//! Cluster assembly and blocking client handles.
//!
//! The cluster is **variant-generic**: it is built from the same
//! [`Setup`] enum the simulator's `SimCluster` uses, and every process is
//! constructed through the [`Setup`] factories — the atomic (§3),
//! two-round (App. C) and regular (App. D) algorithms all run on real
//! threads with no variant-specific code in this module.

use crate::router::{spawn_router, Envelope, NetStats, RouterConfig, SlotMap};
use crate::tcp::{build_fabric, TcpFabric, Transport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use lucky_core::runtime::{ClientSession, Input, ServerCore, SessionError, SessionOutcome};
use lucky_core::{ProtocolConfig, SessionConfig, Setup};
use lucky_sim::Effects;
use lucky_types::{
    BatchConfig, Message, Op, ProcessId, ReaderId, RegisterId, ServerId, Time, Value,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a threaded cluster.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Minimum injected one-way latency.
    pub min_latency: Duration,
    /// Maximum injected one-way latency.
    pub max_latency: Duration,
    /// Router RNG seed (latency sampling).
    pub seed: u64,
    /// Client round-1 timer. Must be at least `2 × max_latency` plus a
    /// scheduling margin for operations to be reliably lucky;
    /// [`NetConfig::for_latency`] computes exactly that.
    pub timer: Duration,
}

impl NetConfig {
    /// Margin added on top of the `2 × max_latency` round trip when
    /// deriving the timer, absorbing thread-scheduling noise.
    pub const TIMER_MARGIN: Duration = Duration::from_millis(6);

    /// How many timer lengths a blocking operation may take before it
    /// fails with [`NetError::TimedOut`]; generous so that only genuine
    /// stalls (too many crashes, partitioned quorums) trip it, even on a
    /// slow or heavily loaded CI machine.
    pub const OP_DEADLINE_TIMERS: u32 = 200;

    /// Lower bound on the per-operation deadline: with a very short
    /// timer the proportional deadline would also have to cover thread
    /// spawn and router start-up, which the timer does not model.
    pub const OP_DEADLINE_FLOOR: Duration = Duration::from_secs(1);

    /// A configuration for the given latency band, with the round-1 timer
    /// derived as `2 × max_latency + TIMER_MARGIN`.
    pub fn for_latency(min_latency: Duration, max_latency: Duration) -> NetConfig {
        NetConfig {
            min_latency,
            max_latency,
            seed: 0,
            timer: 2 * max_latency + NetConfig::TIMER_MARGIN,
        }
    }

    /// The per-operation deadline, derived from the configured timer
    /// (see [`NetConfig::OP_DEADLINE_TIMERS`]) and clamped to
    /// [`NetConfig::OP_DEADLINE_FLOOR`].
    pub fn op_deadline(&self) -> Duration {
        (NetConfig::OP_DEADLINE_TIMERS * self.timer).max(NetConfig::OP_DEADLINE_FLOOR)
    }
}

impl Default for NetConfig {
    /// 200µs–2ms injected latency; the derived timer is
    /// `2 × 2ms + 6ms = 10ms`.
    fn default() -> Self {
        NetConfig::for_latency(Duration::from_micros(200), Duration::from_millis(2))
    }
}

/// Why a blocking operation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetError {
    /// The cluster was shut down while the operation was in flight.
    Disconnected,
    /// The operation did not complete within the deadline.
    TimedOut,
    /// A driver bug: an operation was started on a session that already
    /// had one in flight. Every driver serializes ops per session (the
    /// threaded driver by construction, the polled/reactor workers via
    /// their `is_ready` gate), so seeing this means a driver invariant
    /// was violated — it is deliberately *not* folded into
    /// [`NetError::TimedOut`], which reports a protocol-level deadline.
    DriverBusy,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "cluster shut down mid-operation"),
            NetError::TimedOut => write!(f, "operation did not complete within the deadline"),
            NetError::DriverBusy => {
                write!(f, "driver invariant violation: an operation was already in flight")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl NetError {
    /// The tracing classification of this failure.
    pub(crate) fn fail_reason(self) -> lucky_trace::FailReason {
        match self {
            NetError::TimedOut => lucky_trace::FailReason::Deadline,
            NetError::DriverBusy => lucky_trace::FailReason::Busy,
            NetError::Disconnected => lucky_trace::FailReason::Disconnected,
        }
    }
}

/// Map a client process to its tracing identity. `reg` disambiguates
/// readers, whose global ids do not name their register.
pub(crate) fn trace_actor(client: ProcessId, reg: RegisterId) -> lucky_trace::Actor {
    match client {
        ProcessId::Writer | ProcessId::WriterOf(_) => lucky_trace::Actor::Writer { reg: reg.0 },
        ProcessId::Reader(r) => lucky_trace::Actor::Reader { reg: reg.0, id: r.0 },
        ProcessId::Server(s) => lucky_trace::Actor::Server { id: s.0 },
    }
}

/// How session failures surface to blocking/future callers. The polled,
/// reactor and threaded drivers all use this one mapping, so the
/// deadline-vs-busy distinction cannot silently diverge again.
impl From<SessionError> for NetError {
    fn from(err: SessionError) -> NetError {
        match err {
            SessionError::DeadlineExceeded => NetError::TimedOut,
            SessionError::Busy => NetError::DriverBusy,
        }
    }
}

/// Why a client handle could not be handed out.
///
/// The original API returned a bare `Option`, silently conflating "you
/// already took this handle" with "no such process exists"; the store API
/// distinguishes them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HandleError {
    /// The writer handle was already taken.
    WriterTaken,
    /// That reader's handle was already taken.
    ReaderTaken(ReaderId),
    /// No reader with this id exists in the cluster.
    UnknownReader(ReaderId),
    /// No register with this id exists in the store.
    UnknownRegister(RegisterId),
    /// That register's handle was already taken.
    RegisterTaken(RegisterId),
}

impl fmt::Display for HandleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandleError::WriterTaken => write!(f, "writer handle already taken"),
            HandleError::ReaderTaken(r) => write!(f, "reader {r} handle already taken"),
            HandleError::UnknownReader(r) => write!(f, "no reader {r} in this cluster"),
            HandleError::UnknownRegister(x) => write!(f, "no register {x} in this store"),
            HandleError::RegisterTaken(x) => write!(f, "register {x} handle already taken"),
        }
    }
}

impl std::error::Error for HandleError {}

/// Outcome of a blocking operation on the threaded runtime.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetOutcome {
    /// The register the operation targeted.
    pub reg: RegisterId,
    /// Whether the operation was a WRITE or a READ.
    pub kind: lucky_types::OpKind,
    /// Value read (READs) or written (WRITEs).
    pub value: Value,
    /// Communication round-trips used.
    pub rounds: u32,
    /// `true` iff the operation was fast (one round-trip).
    pub fast: bool,
    /// Wall-clock latency.
    pub elapsed: Duration,
}

impl NetOutcome {
    /// Assemble from a completed session outcome: the invoked `op`
    /// resolves the headline value (a WRITE reports the value written),
    /// `elapsed` is the driver's measured wall time. Shared by the
    /// threaded and polled drivers so the mapping lives once.
    pub(crate) fn from_session(outcome: SessionOutcome, op: &Op, elapsed: Duration) -> NetOutcome {
        NetOutcome {
            reg: outcome.reg,
            kind: outcome.kind,
            value: outcome.value_or(op),
            rounds: outcome.rounds,
            fast: outcome.fast,
            elapsed,
        }
    }
}

/// Control-plane commands for one server thread: the crash-recovery
/// harness speaks to a *live thread* whose protocol core comes and goes.
pub(crate) enum ServerCtl {
    /// Drop the protocol core: the thread keeps draining its inbox but
    /// every delivery is discarded, exactly as a dead process loses the
    /// messages sent to it.
    Crash,
    /// Rebuild the core and resume answering. The builder runs on the
    /// server thread *after* the old core (and its open log handles)
    /// has been dropped, so a durable rebuild replays logs whose every
    /// pre-crash write has completed. The second field acknowledges the
    /// completed rebuild: the requester blocks on it so that once its
    /// `restart_server` returns, no later message can race the
    /// still-down window and be lost (deliveries *before* the rebuild
    /// are lost like any message to a down server).
    Restart(Box<dyn FnOnce() -> Box<dyn ServerCore> + Send>, Sender<()>),
}

/// How long a server thread blocks on its inbox before re-checking the
/// control channel — bounds how stale a crash/restart command can go
/// unnoticed while the inbox is quiet.
const CTL_POLL: Duration = Duration::from_millis(5);

/// Spawn one server's event loop: deliver every inbox message to `core`
/// and forward its replies to the router. Shared by `NetCluster` and
/// `NetStore`. The control channel injects crash/restart transitions;
/// pass a receiver whose sender was dropped for a plain always-up
/// server. The thread exits when the inbox disconnects.
pub(crate) fn spawn_server_thread(
    name: String,
    id: ProcessId,
    core: Box<dyn ServerCore>,
    rx: Receiver<(ProcessId, Message)>,
    ctl: Receiver<ServerCtl>,
    router: Sender<Envelope>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let mut core = Some(core);
            loop {
                // Control first: a queued crash takes effect before any
                // queued delivery, so deliveries behind the command in
                // wall-clock order are lost like a real crash loses them.
                match ctl.try_recv() {
                    Ok(ServerCtl::Crash) => core = None,
                    Ok(ServerCtl::Restart(build, done)) => {
                        // The old core (and its open log handles) drops
                        // before the rebuild opens the same logs.
                        drop(core.take());
                        core = Some(build());
                        let _ = done.send(());
                    }
                    // Empty, or no controller at all (sender dropped):
                    // behave as a plain server.
                    Err(_) => {}
                }
                match rx.recv_timeout(CTL_POLL) {
                    Ok((from, msg)) => {
                        let Some(core) = core.as_mut() else {
                            continue; // crashed: the delivery is lost
                        };
                        let mut eff = Effects::new();
                        core.deliver(from, msg, &mut eff);
                        let (sends, _, _) = eff.into_parts();
                        for (to, out) in sends {
                            if router.send(Envelope::Deliver { from: id, to, msg: out }).is_err() {
                                return;
                            }
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
            }
        })
        .expect("spawn server thread")
}

/// Panic on a server index configured both crashed and Byzantine: the
/// crash would silently win and the Byzantine behaviour never run.
pub(crate) fn assert_one_fault_per_server(
    crashed: &[u16],
    byzantine: &BTreeMap<u16, Box<dyn ServerCore>>,
) {
    if let Some(i) = crashed.iter().find(|i| byzantine.contains_key(i)) {
        panic!("server {i} configured both crashed and Byzantine — pick one fault per server");
    }
}

/// Drives one [`ClientSession`] from the calling thread: a pure
/// channel pump. The driver owns no timer or deadline bookkeeping — it
/// feeds the session deliveries and wake-ups and honours
/// [`ClientSession::next_wake`], translating session time (microseconds
/// since the driver's epoch) to wall-clock instants.
pub(crate) struct ClientDriver {
    session: ClientSession,
    /// Origin of the session's clock: session `Time(t)` is the wall
    /// instant `epoch + t µs`.
    epoch: Instant,
    /// Latched once the inbox disconnects (cluster shut down
    /// mid-operation): every later `run_op` fails fast with
    /// [`NetError::Disconnected`] instead of touching the session,
    /// whose abandoned operation can never be completed or retried.
    disconnected: bool,
    pub(crate) inbox: Receiver<(ProcessId, Message)>,
    pub(crate) router: Sender<Envelope>,
    /// Wire messages sent or received while the current op was pending
    /// (same attribution the sim world performs per `OpRecord`).
    op_msgs: u64,
    /// Codec-exact bytes of those messages.
    op_bytes: u64,
}

impl ClientDriver {
    /// Wrap a session (deadline already configured) around its channels.
    pub(crate) fn new(
        session: ClientSession,
        inbox: Receiver<(ProcessId, Message)>,
        router: Sender<Envelope>,
    ) -> ClientDriver {
        ClientDriver {
            session,
            epoch: Instant::now(),
            disconnected: false,
            inbox,
            router,
            op_msgs: 0,
            op_bytes: 0,
        }
    }

    /// The last `run_op`'s `(msgs, bytes)` traffic attribution, for the
    /// worker's history record.
    pub(crate) fn op_traffic(&self) -> (u64, u64) {
        (self.op_msgs, self.op_bytes)
    }

    /// The register this driver's session operates on.
    pub(crate) fn reg(&self) -> RegisterId {
        self.session.reg()
    }

    /// The client process this driver's session drives.
    pub(crate) fn id(&self) -> ProcessId {
        self.session.id()
    }

    /// The last operation's phase marks, for the tracer.
    pub(crate) fn span(&self) -> &lucky_trace::OpSpan {
        self.session.span()
    }

    fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_micros() as u64)
    }

    /// Translate a session instant back to the wall clock.
    fn instant_of(&self, t: Time) -> Instant {
        self.epoch + Duration::from_micros(t.0)
    }

    pub(crate) fn run_op(&mut self, op: Op) -> Result<NetOutcome, NetError> {
        if self.disconnected {
            return Err(NetError::Disconnected);
        }
        let start = Instant::now();
        self.op_msgs = 0;
        self.op_bytes = 0;
        self.session
            .begin(op.clone(), self.now())
            .expect("handles run one operation at a time (§2.2)");
        self.pump();
        loop {
            if let Some(outcome) = self.session.take_outcome() {
                return Ok(NetOutcome::from_session(outcome, &op, start.elapsed()));
            }
            if let Some(err) = self.session.take_failure() {
                return Err(err.into());
            }
            let received = match self.session.next_wake() {
                Some(due) => {
                    let timeout = self.instant_of(due).saturating_duration_since(Instant::now());
                    match self.inbox.recv_timeout(timeout) {
                        Ok(delivery) => Some(delivery),
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                            self.disconnected = true;
                            return Err(NetError::Disconnected);
                        }
                    }
                }
                // No wake needed (no timers, no deadline): block freely.
                None => match self.inbox.recv() {
                    Ok(delivery) => Some(delivery),
                    Err(_) => {
                        self.disconnected = true;
                        return Err(NetError::Disconnected);
                    }
                },
            };
            let input = match received {
                Some((from, msg)) => {
                    self.op_msgs += 1;
                    self.op_bytes += msg.wire_size() as u64;
                    Input::Deliver(from, msg)
                }
                None => Input::Wake,
            };
            self.session.handle(input, self.now());
            self.pump();
        }
    }

    /// Forward everything the session wants sent to the router,
    /// attributing each send to the op in flight.
    fn pump(&mut self) {
        let from = self.session.id();
        while let Some(out) = self.session.poll_output() {
            let (to, msg) = out.into_send();
            self.op_msgs += 1;
            self.op_bytes += msg.wire_size() as u64;
            let _ = self.router.send(Envelope::Deliver { from, to, msg });
        }
    }
}

/// Blocking writer handle: owns the writer core (of whatever variant the
/// cluster's [`Setup`] names).
pub struct WriterHandle {
    driver: ClientDriver,
}

impl fmt::Debug for WriterHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriterHandle").finish_non_exhaustive()
    }
}

impl WriterHandle {
    /// `WRITE(v)`, blocking until it completes.
    ///
    /// # Errors
    ///
    /// [`NetError`] if the cluster shut down or the operation stalled.
    pub fn write(&mut self, v: Value) -> Result<NetOutcome, NetError> {
        self.driver.run_op(Op::Write(v))
    }
}

/// Blocking reader handle: owns one reader core (of whatever variant the
/// cluster's [`Setup`] names).
pub struct ReaderHandle {
    driver: ClientDriver,
}

impl fmt::Debug for ReaderHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReaderHandle").finish_non_exhaustive()
    }
}

impl ReaderHandle {
    /// `READ()`, blocking until it completes.
    ///
    /// # Errors
    ///
    /// [`NetError`] if the cluster shut down or the operation stalled.
    pub fn read(&mut self) -> Result<NetOutcome, NetError> {
        self.driver.run_op(Op::Read)
    }
}

/// Builder for a threaded cluster.
pub struct NetClusterBuilder {
    setup: Setup,
    cfg: NetConfig,
    readers: usize,
    batch: BatchConfig,
    transport: Transport,
    byzantine: BTreeMap<u16, Box<dyn ServerCore>>,
    crashed: Vec<u16>,
}

impl fmt::Debug for NetClusterBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetClusterBuilder")
            .field("setup", &self.setup)
            .field("readers", &self.readers)
            .finish_non_exhaustive()
    }
}

impl NetClusterBuilder {
    /// Number of reader handles to create (default 1).
    #[must_use]
    pub fn readers(mut self, readers: usize) -> Self {
        self.readers = readers;
        self
    }

    /// Wire-message batching policy (default off). Enabled, the router
    /// coalesces messages per destination socket-slot and servers
    /// re-batch their acks; disabled, the wire traffic is identical to
    /// the pre-batching runtime.
    #[must_use]
    pub fn batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Wire transport (default [`Transport::Channel`]). Under
    /// [`Transport::Tcp`] every server owns a real loopback socket and
    /// all traffic crosses it as `lucky-wire` frames.
    #[must_use]
    pub fn transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Install a Byzantine behaviour at server `i`.
    #[must_use]
    pub fn byzantine(mut self, i: u16, core: Box<dyn ServerCore>) -> Self {
        self.byzantine.insert(i, core);
        self
    }

    /// Start server `i` crashed (it is simply never spawned).
    #[must_use]
    pub fn crashed(mut self, i: u16) -> Self {
        self.crashed.push(i);
        self
    }

    /// Spawn the router and server threads and hand out client handles.
    ///
    /// # Panics
    ///
    /// Panics if a server index is configured both crashed and Byzantine.
    pub fn build(mut self) -> NetCluster {
        assert_one_fault_per_server(&self.crashed, &self.byzantine);
        let protocol = ProtocolConfig {
            timer_micros: self.cfg.timer.as_micros() as u64,
            ..ProtocolConfig::default()
        };
        let (router_tx, router_rx) = unbounded::<Envelope>();
        let mut inboxes = BTreeMap::new();
        let mut server_threads = Vec::new();

        // Socket-slot map for the router's batching: each server and each
        // client process is its own slot in this single-register runtime.
        let server_count = self.setup.server_count();
        let mut slots: SlotMap = SlotMap::new();

        // Client inboxes.
        let (writer_tx, writer_rx) = unbounded();
        inboxes.insert(ProcessId::Writer, writer_tx);
        slots.insert(ProcessId::Writer, server_count);
        let mut reader_rxs = BTreeMap::new();
        for r in ReaderId::all(self.readers) {
            let (tx, rx) = unbounded();
            inboxes.insert(ProcessId::Reader(r), tx);
            slots.insert(ProcessId::Reader(r), server_count + 1 + r.index());
            reader_rxs.insert(r, rx);
        }

        // Server threads.
        for s in ServerId::all(server_count) {
            slots.insert(ProcessId::Server(s), s.index());
            if self.crashed.contains(&s.0) {
                continue;
            }
            let (tx, rx) = unbounded::<(ProcessId, Message)>();
            inboxes.insert(ProcessId::Server(s), tx);
            // Honest servers multiplex per-register state; a cluster built
            // through this API only ever sees the default register, but the
            // mux keeps the two runtimes structurally identical.
            let core: Box<dyn ServerCore> = match self.byzantine.remove(&s.0) {
                Some(byz) => byz,
                None => self.setup.make_server_mux_batched(self.batch),
            };
            // No control plane on the single-register cluster: the
            // dropped sender leaves the thread a plain always-up server.
            let (_ctl_tx, ctl_rx) = unbounded::<ServerCtl>();
            server_threads.push(spawn_server_thread(
                format!("lucky-server-{}", s.0),
                ProcessId::Server(s),
                core,
                rx,
                ctl_rx,
                router_tx.clone(),
            ));
        }

        // Router thread — and, under TCP, the socket fabric between the
        // router and the destination slots.
        let stats = Arc::new(Mutex::new(NetStats::default()));
        let (fabric, sinks) = match self.transport {
            Transport::Channel => (None, None),
            Transport::Tcp => {
                let (fabric, sinks) = build_fabric("lucky-cluster", &slots, &inboxes, &stats);
                (Some(fabric), Some(sinks))
            }
        };
        let router_thread = spawn_router(
            "lucky-router",
            router_rx,
            inboxes,
            RouterConfig {
                latency: (self.cfg.min_latency, self.cfg.max_latency),
                seed: self.cfg.seed,
                batch: self.batch,
                slots,
                sinks,
            },
            Arc::clone(&stats),
        );

        // Deadline derived from the configured timer and handed to every
        // session once: stalls surface as TimedOut without any deadline
        // arithmetic in the drivers.
        let session_cfg = SessionConfig::with_deadline(self.cfg.op_deadline().as_micros() as u64);

        let writer = WriterHandle {
            driver: ClientDriver::new(
                self.setup.make_writer_session(RegisterId::DEFAULT, protocol, session_cfg),
                writer_rx,
                router_tx.clone(),
            ),
        };
        let reader_count = reader_rxs.len();
        let readers = reader_rxs
            .into_iter()
            .map(|(r, rx)| {
                (
                    r,
                    ReaderHandle {
                        driver: ClientDriver::new(
                            self.setup.make_reader_session(
                                RegisterId::DEFAULT,
                                r,
                                protocol,
                                session_cfg,
                            ),
                            rx,
                            router_tx.clone(),
                        ),
                    },
                )
            })
            .collect();

        NetCluster {
            router_tx,
            router_thread: Some(router_thread),
            server_threads,
            fabric,
            writer: Some(writer),
            readers,
            reader_count,
            stats,
        }
    }
}

/// A running threaded cluster. Take the client handles with
/// [`NetCluster::take_writer`] / [`NetCluster::take_reader`] (they can be
/// moved to other threads) and call [`NetCluster::shutdown`] when done.
pub struct NetCluster {
    router_tx: Sender<Envelope>,
    router_thread: Option<JoinHandle<()>>,
    server_threads: Vec<JoinHandle<()>>,
    fabric: Option<TcpFabric>,
    writer: Option<WriterHandle>,
    readers: BTreeMap<ReaderId, ReaderHandle>,
    reader_count: usize,
    stats: Arc<Mutex<NetStats>>,
}

impl fmt::Debug for NetCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetCluster")
            .field("servers", &self.server_threads.len())
            .field("readers", &self.readers.len())
            .finish_non_exhaustive()
    }
}

impl NetCluster {
    /// Start building a cluster of the given variant. Accepts a [`Setup`]
    /// directly, or anything converting into one (`Params` selects the
    /// atomic algorithm, `TwoRoundParams` the two-round one; build
    /// [`Setup::Regular`] explicitly for the regular variant).
    pub fn builder(setup: impl Into<Setup>, cfg: NetConfig) -> NetClusterBuilder {
        NetClusterBuilder {
            setup: setup.into(),
            cfg,
            readers: 1,
            batch: BatchConfig::disabled(),
            transport: Transport::Channel,
            byzantine: BTreeMap::new(),
            crashed: Vec::new(),
        }
    }

    /// Take the writer handle (once).
    ///
    /// # Errors
    ///
    /// [`HandleError::WriterTaken`] if it was already taken.
    pub fn take_writer(&mut self) -> Result<WriterHandle, HandleError> {
        self.writer.take().ok_or(HandleError::WriterTaken)
    }

    /// Take reader `i`'s handle (once each).
    ///
    /// # Errors
    ///
    /// [`HandleError::UnknownReader`] if no such reader was configured,
    /// [`HandleError::ReaderTaken`] if its handle was already taken.
    pub fn take_reader(&mut self, i: u16) -> Result<ReaderHandle, HandleError> {
        let id = ReaderId(i);
        if i as usize >= self.reader_count {
            return Err(HandleError::UnknownReader(id));
        }
        self.readers.remove(&id).ok_or(HandleError::ReaderTaken(id))
    }

    /// Router statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats.lock().clone()
    }

    /// The loopback address server `s` listens on, when the cluster
    /// runs over [`Transport::Tcp`] (`None` under the channel transport
    /// or for a crashed server).
    pub fn server_addr(&self, s: ServerId) -> Option<std::net::SocketAddr> {
        self.fabric.as_ref().and_then(|f| f.server_addrs.get(&s).copied())
    }

    /// Stop the router, fabric and server threads and wait for them.
    pub fn shutdown(&mut self) {
        let _ = self.router_tx.send(Envelope::Stop);
        if let Some(t) = self.router_thread.take() {
            let _ = t.join();
        }
        // Router gone → its socket sinks closed → the fabric's readers
        // see EOF and release the inbox senders as the fabric joins.
        if let Some(mut fabric) = self.fabric.take() {
            fabric.shutdown();
        }
        // All inbox senders gone → server inboxes disconnect → exit.
        for t in self.server_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetCluster {
    fn drop(&mut self) {
        // Non-blocking: signal stop; threads unwind on channel disconnect.
        let _ = self.router_tx.send(Envelope::Stop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucky_types::Params;

    fn fast_cfg() -> NetConfig {
        NetConfig {
            min_latency: Duration::from_micros(50),
            max_latency: Duration::from_micros(200),
            seed: 1,
            timer: Duration::from_millis(5),
        }
    }

    #[test]
    fn write_then_read_round_trips() {
        let params = Params::new(1, 0, 1, 0).unwrap();
        let mut cluster = NetCluster::builder(params, fast_cfg()).build();
        let mut writer = cluster.take_writer().unwrap();
        let mut reader = cluster.take_reader(0).unwrap();
        let w = writer.write(Value::from_u64(7)).unwrap();
        assert!(w.rounds >= 1);
        let r = reader.read().unwrap();
        assert_eq!(r.value.as_u64(), Some(7));
        assert!(cluster.stats().messages > 0);
        cluster.shutdown();
    }

    #[test]
    fn sequential_values_are_monotone() {
        let params = Params::new(1, 1, 0, 0).unwrap();
        let mut cluster = NetCluster::builder(params, fast_cfg()).build();
        let mut writer = cluster.take_writer().unwrap();
        let mut reader = cluster.take_reader(0).unwrap();
        for i in 1..=5u64 {
            writer.write(Value::from_u64(i)).unwrap();
            let r = reader.read().unwrap();
            assert_eq!(r.value.as_u64(), Some(i));
        }
        cluster.shutdown();
    }

    #[test]
    fn crashed_server_within_t_does_not_block() {
        let params = Params::new(2, 0, 1, 1).unwrap();
        let mut cluster = NetCluster::builder(params, fast_cfg()).crashed(0).build();
        let mut writer = cluster.take_writer().unwrap();
        let mut reader = cluster.take_reader(0).unwrap();
        writer.write(Value::from_u64(1)).unwrap();
        let r = reader.read().unwrap();
        assert_eq!(r.value.as_u64(), Some(1));
        cluster.shutdown();
    }

    #[test]
    fn byzantine_forger_is_outvoted() {
        use lucky_core::byz::ForgeValue;
        use lucky_types::{Seq, TsVal};
        let params = Params::new(1, 1, 0, 0).unwrap();
        let forged = TsVal::new(Seq(50), Value::from_u64(666));
        let mut cluster = NetCluster::builder(params, fast_cfg())
            .byzantine(0, Box::new(ForgeValue::new(forged)))
            .build();
        let mut writer = cluster.take_writer().unwrap();
        let mut reader = cluster.take_reader(0).unwrap();
        writer.write(Value::from_u64(1)).unwrap();
        let r = reader.read().unwrap();
        assert_eq!(r.value.as_u64(), Some(1));
        cluster.shutdown();
    }

    #[test]
    fn concurrent_reader_threads() {
        let params = Params::new(1, 0, 0, 1).unwrap();
        let mut cluster = NetCluster::builder(params, fast_cfg()).readers(2).build();
        let mut writer = cluster.take_writer().unwrap();
        let mut r0 = cluster.take_reader(0).unwrap();
        let mut r1 = cluster.take_reader(1).unwrap();
        writer.write(Value::from_u64(1)).unwrap();
        let t = std::thread::spawn(move || {
            let mut seen = Vec::new();
            for _ in 0..5 {
                seen.push(r1.read().unwrap().value.as_u64().unwrap());
            }
            seen
        });
        for i in 2..=6u64 {
            writer.write(Value::from_u64(i)).unwrap();
            let v = r0.read().unwrap().value.as_u64().unwrap();
            assert!(v >= i.saturating_sub(1), "reader sees a recent value");
        }
        let seen = t.join().unwrap();
        // Values seen by the concurrent reader never decrease (atomicity).
        for pair in seen.windows(2) {
            assert!(pair[1] >= pair[0], "no new/old inversion: {seen:?}");
        }
        cluster.shutdown();
    }

    #[test]
    fn operations_after_shutdown_fail_with_disconnected_idempotently() {
        let params = Params::new(1, 0, 1, 0).unwrap();
        let mut cluster = NetCluster::builder(params, fast_cfg()).build();
        let mut writer = cluster.take_writer().unwrap();
        writer.write(Value::from_u64(1)).unwrap();
        cluster.shutdown();
        // The first post-shutdown write observes the disconnect; every
        // retry reports it again instead of panicking on a busy session.
        assert_eq!(writer.write(Value::from_u64(2)).unwrap_err(), NetError::Disconnected);
        assert_eq!(writer.write(Value::from_u64(3)).unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn too_many_crashes_time_out() {
        let params = Params::new(1, 0, 1, 0).unwrap();
        let mut cfg = fast_cfg();
        cfg.timer = Duration::from_millis(1);
        let mut cluster = NetCluster::builder(params, cfg).crashed(0).crashed(1).build();
        let mut writer = cluster.take_writer().unwrap();
        assert_eq!(writer.write(Value::from_u64(1)).unwrap_err(), NetError::TimedOut);
        cluster.shutdown();
    }
}
