//! # lucky-net
//!
//! A thread-based, wall-clock runtime for the lucky storage protocols.
//!
//! The same sans-io cores that run under the deterministic simulator run
//! here over real threads and channels: every server is a thread, a
//! router thread injects configurable per-message latency, and client
//! handles drive the writer/reader cores from the caller's thread with
//! blocking `write`/`read` calls. This is the runtime the
//! `replicated_config_store` example uses to demonstrate the library
//! outside the simulator.
//!
//! The runtime is **variant-generic**: clusters are built from the same
//! `Setup` enum the simulator uses, and every process comes out of the
//! `Setup` factories in `lucky-core`, which in turn instantiate the
//! shared round-engine kernel (`lucky_core::engine`) with the chosen
//! variant's policy. The atomic (§3), two-round (App. C) and regular
//! (App. D) algorithms therefore all run on real threads with no
//! variant-specific code in this crate:
//!
//! ```
//! use lucky_net::{NetCluster, NetConfig};
//! use lucky_types::TwoRoundParams;
//! # use lucky_types::Value;
//!
//! let params = TwoRoundParams::new(1, 0, 1).unwrap();
//! let mut cluster = NetCluster::builder(params, NetConfig::default()).build();
//! let mut writer = cluster.take_writer().expect("writer handle");
//! let w = writer.write(Value::from_u64(1)).unwrap();
//! assert_eq!((w.rounds, w.fast), (2, false)); // App. C: always two rounds
//! cluster.shutdown();
//! ```
//!
//! ```
//! use lucky_net::{NetCluster, NetConfig};
//! use lucky_types::{Params, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = Params::new(1, 0, 1, 0)?;
//! let mut cluster = NetCluster::builder(params, NetConfig::default()).build();
//! let mut writer = cluster.take_writer().expect("writer handle");
//! let mut reader = cluster.take_reader(0).expect("reader handle");
//!
//! let w = writer.write(Value::from_u64(42))?;
//! assert!(w.rounds >= 1);
//! let r = reader.read()?;
//! assert_eq!(r.value.as_u64(), Some(42));
//! cluster.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! ## Multi-register stores
//!
//! [`NetStore`] serves a whole namespace of independent registers over
//! one server cluster: every server thread multiplexes per-register
//! state, and client cores are **sharded across worker threads by
//! register** so independent registers proceed concurrently over the
//! shared router. Router statistics are broken down per register and
//! per destination server.
//!
//! ## Drivers
//!
//! Client cores are wrapped in `lucky-core`'s sans-io `ClientSession`
//! (the poll-based op lifecycle with the per-operation deadline built
//! in) and driven one of two ways, selected per store with the builder
//! method `driver`:
//!
//! * [`Driver::Threaded`] (default) — a blocking pump per job:
//!   `recv_timeout` until the session's `next_wake`, one operation at a
//!   time per shard worker;
//! * [`Driver::Polled`] — a nonblocking readiness-style poll loop per
//!   shard worker, multiplexing **all** of the shard's sessions on one
//!   thread; under [`Transport::Tcp`] the worker accepts and reads its
//!   own socket with `lucky-wire`'s push-based `FrameDecoder` instead
//!   of per-connection reader threads;
//! * [`Driver::Reactor`] — the same multiplexing worker driven by a
//!   real `epoll` instance (Linux; requires [`Transport::Tcp`]): the
//!   thread sleeps in `epoll_wait` with the sessions' `next_wake`
//!   timers folded into the timeout and wakes only for actual IO, a
//!   timer, or a job submission (signalled via `eventfd`) — so one
//!   thread drives thousands of concurrent in-flight sessions and an
//!   idle store burns zero CPU. `tests/driver_equivalence.rs` proves
//!   the drivers observably interchangeable, and `tests/reactor.rs`
//!   pins the concurrency and idle-CPU properties.
//!
//! ## Futures
//!
//! On top of the ticket API, [`NetRegisterHandle::write_future`] /
//! [`read_future`](NetRegisterHandle::read_future) (and their `async
//! fn` sugar [`write_async`](NetRegisterHandle::write_async) /
//! [`read_async`](NetRegisterHandle::read_async)) return real
//! [`OpFuture`]s: the op is submitted immediately and the shard worker
//! wakes the awaiting task when it settles. Any executor works; the
//! std-only batteries in [`exec`] ([`exec::block_on`],
//! [`exec::Executor`], [`exec::run_all`]) are enough to hold thousands
//! of operations in flight from one caller thread.
//!
//! ## Transports
//!
//! The router moves wire messages over one of two transports (builder
//! method `transport`): [`Transport::Channel`] (default) hands them to
//! in-process inboxes, while [`Transport::Tcp`] gives every server and
//! every shard worker a real `std::net` loopback socket — each wire
//! message is encoded by `lucky-wire`, framed with a checksum, written
//! to the destination slot's socket and reassembled from partial reads
//! on the far side. Under TCP, [`NetStats::wire_bytes`] reports the
//! true framed byte count (strictly above the codec-exact payload
//! accounting in `bytes`), [`NetStats::decode_errors`] counts rejected
//! hostile frames, and `server_addr` exposes each server's listener
//! for adversarial harnesses that talk raw bytes.
//!
//! ## Batching
//!
//! With an enabled `BatchConfig` (builder method `batch`), the router
//! coalesces messages bound for the same destination socket-slot — a
//! server, or the shard worker hosting a group of client cores — into
//! single `Message::Batch` wire messages (up to `max_msgs` parts,
//! waiting at most `max_delay_micros` for co-travellers), and servers
//! re-batch their acks per sender. [`NetStats`] reports the economics:
//! `messages` counts wire messages (a batch once), `parts` the protocol
//! messages carried, `batches_sent`/`msgs_per_batch` the coalescing
//! achieved. Batching is off by default, in which case the wire traffic
//! is identical to the pre-batching runtime.
//!
//! ```
//! use lucky_net::{NetConfig, NetStore};
//! use lucky_types::{Params, RegisterId, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = Params::new(1, 0, 1, 0)?;
//! let mut store = NetStore::builder(params, NetConfig::default()).registers(3).build();
//!
//! let h2 = store.register(RegisterId(2))?; // descriptive error if taken/unknown
//! h2.write(Value::from_u64(7))?;
//! assert_eq!(h2.read(0)?.value.as_u64(), Some(7));
//! assert!(store.stats().register(RegisterId(2)).messages > 0);
//! store.check_atomicity()?; // per-register linearizability oracle
//! store.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cluster;
pub mod exec;
mod future;
mod polled;
mod reactor;
mod router;
mod store;
mod tcp;

pub use cluster::{
    HandleError, NetCluster, NetClusterBuilder, NetConfig, NetError, NetOutcome, ReaderHandle,
    WriterHandle,
};
pub use future::OpFuture;
pub use polled::Driver;
pub use router::{GroupStats, NetStats, RegisterStats, ServerStats};
pub use store::{NetRegisterHandle, NetStore, NetStoreBuilder, OpTicket};
pub use tcp::Transport;
