//! # lucky-net
//!
//! A thread-based, wall-clock runtime for the lucky storage protocols.
//!
//! The same sans-io cores that run under the deterministic simulator run
//! here over real threads and channels: every server is a thread, a
//! router thread injects configurable per-message latency, and client
//! handles drive the writer/reader cores from the caller's thread with
//! blocking `write`/`read` calls. This is the runtime the
//! `replicated_config_store` example uses to demonstrate the library
//! outside the simulator.
//!
//! The runtime is **variant-generic**: clusters are built from the same
//! `Setup` enum the simulator uses, and every process comes out of the
//! `Setup` factories in `lucky-core`, which in turn instantiate the
//! shared round-engine kernel (`lucky_core::engine`) with the chosen
//! variant's policy. The atomic (§3), two-round (App. C) and regular
//! (App. D) algorithms therefore all run on real threads with no
//! variant-specific code in this crate:
//!
//! ```
//! use lucky_net::{NetCluster, NetConfig};
//! use lucky_types::TwoRoundParams;
//! # use lucky_types::Value;
//!
//! let params = TwoRoundParams::new(1, 0, 1).unwrap();
//! let mut cluster = NetCluster::builder(params, NetConfig::default()).build();
//! let mut writer = cluster.take_writer().expect("writer handle");
//! let w = writer.write(Value::from_u64(1)).unwrap();
//! assert_eq!((w.rounds, w.fast), (2, false)); // App. C: always two rounds
//! cluster.shutdown();
//! ```
//!
//! ```
//! use lucky_net::{NetCluster, NetConfig};
//! use lucky_types::{Params, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = Params::new(1, 0, 1, 0)?;
//! let mut cluster = NetCluster::builder(params, NetConfig::default()).build();
//! let mut writer = cluster.take_writer().expect("writer handle");
//! let mut reader = cluster.take_reader(0).expect("reader handle");
//!
//! let w = writer.write(Value::from_u64(42))?;
//! assert!(w.rounds >= 1);
//! let r = reader.read()?;
//! assert_eq!(r.value.as_u64(), Some(42));
//! cluster.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cluster;
mod router;

pub use cluster::{
    NetCluster, NetClusterBuilder, NetConfig, NetError, NetOutcome, ReaderHandle, WriterHandle,
};
pub use router::NetStats;
