//! The multi-register store over the threaded runtime.
//!
//! One router thread and one set of server threads (each multiplexing
//! per-register state through `lucky-core`'s `RegisterMux`) serve a whole
//! namespace of registers. Client cores are **sharded across worker
//! threads by register**: a register's writer core lands on worker
//! `hash(RegisterId)` and its reader cores on the neighbouring workers,
//! so operations on independent registers proceed concurrently over the
//! shared router — and a register's READs can overlap its WRITE, exactly
//! the concurrency the SWMR model permits (one writer, many readers).
//! Only operations on the *same core* (the single writer, or one
//! particular reader) serialize.
//!
//! [`NetRegisterHandle::write`]/[`NetRegisterHandle::read`] block the
//! caller; [`NetRegisterHandle::invoke_write`]/
//! [`NetRegisterHandle::invoke_read`] submit the operation and return an
//! [`OpTicket`], letting one caller thread drive many registers at once.

use crate::cluster::{
    assert_one_fault_per_server, spawn_server_thread, ClientDriver, HandleError, NetConfig,
    NetError, NetOutcome, ServerCtl,
};
use crate::future::{NotifyGuard, OpFuture, OpNotify};
use crate::polled::{append_history, Driver, Job, PollIo, PolledSlot, PolledWorker};
use crate::reactor::ReactorWorker;
use crate::router::{spawn_router, Envelope, NetStats, RouterConfig, SlotMap};
use crate::tcp::{build_fabric, TcpFabric, Transport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use epoll::WakeFd;
use lucky_core::runtime::ServerCore;
use lucky_core::{ProtocolConfig, SessionConfig, Setup, StoreConfig};
use lucky_log::{DurableBackend, LogCounters};
use lucky_types::{BatchConfig, History, Op, ProcessId, RegisterId, ServerId, Time, Value};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Key of a register's writer core within its worker (readers are `j+1`).
const WRITER_SLOT: u32 = 0;

/// Builder for a threaded multi-register store.
pub struct NetStoreBuilder {
    setup: Setup,
    cfg: NetConfig,
    registers: usize,
    readers_per_register: usize,
    shards: Option<usize>,
    protocol: ProtocolConfig,
    batch: BatchConfig,
    transport: Transport,
    driver: Driver,
    byzantine: BTreeMap<u16, Box<dyn ServerCore>>,
    crashed: Vec<u16>,
    durable_dir: Option<PathBuf>,
    trace: lucky_trace::TraceConfig,
}

impl fmt::Debug for NetStoreBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetStoreBuilder")
            .field("setup", &self.setup)
            .field("registers", &self.registers)
            .field("readers_per_register", &self.readers_per_register)
            .finish_non_exhaustive()
    }
}

impl NetStoreBuilder {
    /// Size the register namespace (chainable).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero — a store serves at least one register.
    #[must_use]
    pub fn registers(mut self, n: usize) -> Self {
        assert!(n >= 1, "a store serves at least one register");
        self.registers = n;
        self
    }

    /// Reader handles per register (chainable, default 1).
    #[must_use]
    pub fn readers_per_register(mut self, n: usize) -> Self {
        self.readers_per_register = n;
        self
    }

    /// Number of shard worker threads hosting the client cores
    /// (chainable). Defaults to `min(registers, 4)`. A register's writer
    /// core maps to worker `hash(RegisterId) mod shards` and its readers
    /// to the following workers, so two registers on different workers
    /// never contend for a thread and a register's reads can overlap its
    /// write.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one shard worker");
        self.shards = Some(n);
        self
    }

    /// Protocol tunables (fast paths, freezing, round caps) for every
    /// client core (chainable). The round-1 timer is always re-derived
    /// from the [`NetConfig`] — wall-clock latencies, not the
    /// simulator's microsecond synchrony bound, size it.
    #[must_use]
    pub fn protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Wire-message batching policy (default off). Enabled, the router
    /// coalesces traffic per destination socket-slot — a server, or the
    /// shard worker hosting a group of client cores — into single wire
    /// messages (up to `max_msgs` parts, waiting at most
    /// `max_delay_micros`), and servers re-batch their acks per sender.
    /// Disabled, the wire traffic is identical to the pre-batching
    /// runtime.
    #[must_use]
    pub fn batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Wire transport (default [`Transport::Channel`]). Under
    /// [`Transport::Tcp`] every server and every shard worker owns a
    /// real loopback socket: all protocol traffic is encoded by
    /// `lucky-wire`, framed, written to the destination slot's socket
    /// and reassembled on the far side — and
    /// [`NetStats::wire_bytes`] reports the true framed byte count.
    #[must_use]
    pub fn transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Client-driving strategy (default [`Driver::Threaded`]). Under
    /// [`Driver::Polled`] each shard worker runs a nonblocking
    /// readiness-style poll loop multiplexing all of its client
    /// sessions on one thread — operations on different sessions of one
    /// worker proceed concurrently, and under [`Transport::Tcp`] the
    /// worker reads its own socket (no per-connection reader threads).
    /// The handle/ticket API is identical under both drivers.
    #[must_use]
    pub fn driver(mut self, driver: Driver) -> Self {
        self.driver = driver;
        self
    }

    /// Install a Byzantine behaviour at server `i` (it answers *all*
    /// registers — a malicious server is malicious towards the whole
    /// namespace).
    #[must_use]
    pub fn byzantine(mut self, i: u16, core: Box<dyn ServerCore>) -> Self {
        self.byzantine.insert(i, core);
        self
    }

    /// Start server `i` crashed (it is simply never spawned).
    #[must_use]
    pub fn crashed(mut self, i: u16) -> Self {
        self.crashed.push(i);
        self
    }

    /// Persist every honest server's per-register state in `lucky-log`
    /// append-only logs under `dir` (chainable; per-server subdirectory
    /// `s<i>`). A durable server persists each state transition
    /// *before* its replies leave the node, and a
    /// [`NetStore::restart_server`] replays the logs — so a
    /// crash-restarted server rejoins the quorum with everything it
    /// ever acked. Without this, restarts are amnesiac (crash-stop
    /// semantics).
    #[must_use]
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Op tracing policy (default disabled — a disabled tracer costs one
    /// relaxed atomic load per hook on the hot path). Enabled, every
    /// worker records per-op spans, lucky/slow classification and
    /// latency histograms, all surfaced through [`NetStore::trace`].
    #[must_use]
    pub fn trace(mut self, trace: lucky_trace::TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Spawn the router, server and shard-worker threads.
    ///
    /// # Panics
    ///
    /// Panics if the reader namespace exceeds the `ReaderId` range, or
    /// if a server index is configured both crashed and Byzantine.
    pub fn build(mut self) -> NetStore {
        assert!(
            self.registers * self.readers_per_register <= u16::MAX as usize,
            "reader namespace exceeds the ReaderId range"
        );
        assert_one_fault_per_server(&self.crashed, &self.byzantine);
        let protocol =
            ProtocolConfig { timer_micros: self.cfg.timer.as_micros() as u64, ..self.protocol };
        let (router_tx, router_rx) = unbounded::<Envelope>();
        let mut inboxes = BTreeMap::new();
        let mut server_threads = Vec::new();

        // One session per client core, grouped by shard worker. The
        // router's socket-slot map mirrors the placement: a client
        // process's wire traffic coalesces per hosting worker (the
        // "socket" the worker drains), servers get one slot each. Both
        // drivers share the placement and the session-configured
        // deadline; they differ only in how the worker pumps I/O.
        let shard_count = self.shards.unwrap_or_else(|| self.registers.min(4)).max(1);
        let server_count = self.setup.server_count();
        let mut slots: SlotMap = SlotMap::new();
        let session_cfg = SessionConfig::with_deadline(self.cfg.op_deadline().as_micros() as u64);
        assert!(
            !(self.driver == Driver::Reactor && self.transport != Transport::Tcp),
            "Driver::Reactor requires Transport::Tcp (epoll needs sockets to watch)"
        );
        // The polled and reactor drivers share the session-multiplexing
        // worker (and thus all placement); the reactor only swaps the
        // readiness source.
        let polled = matches!(self.driver, Driver::Polled | Driver::Reactor);
        // Under the polled/reactor driver + TCP, client traffic lands on
        // the worker's own socket: client processes get no channel inbox.
        let channel_clients = !(polled && self.transport == Transport::Tcp);
        let mut shard_drivers: Vec<BTreeMap<(RegisterId, u32), ClientDriver>> =
            (0..shard_count).map(|_| BTreeMap::new()).collect();
        let mut shard_sessions: Vec<BTreeMap<(RegisterId, u32), PolledSlot>> =
            (0..shard_count).map(|_| BTreeMap::new()).collect();
        let mut shard_inboxes: Vec<
            BTreeMap<ProcessId, Receiver<(ProcessId, lucky_types::Message)>>,
        > = (0..shard_count).map(|_| BTreeMap::new()).collect();
        let mut shard_pids: Vec<BTreeMap<ProcessId, (RegisterId, u32)>> =
            (0..shard_count).map(|_| BTreeMap::new()).collect();
        let mut place = |pid: ProcessId,
                         key: (RegisterId, u32),
                         session: lucky_core::ClientSession,
                         slots: &mut SlotMap,
                         inboxes: &mut BTreeMap<
            ProcessId,
            Sender<(ProcessId, lucky_types::Message)>,
        >| {
            let worker = shard_for(key.0, key.1, shard_count);
            slots.insert(pid, server_count + worker);
            let rx = channel_clients.then(|| {
                let (tx, rx) = unbounded();
                inboxes.insert(pid, tx);
                rx
            });
            if polled {
                if let Some(rx) = rx {
                    shard_inboxes[worker].insert(pid, rx);
                }
                shard_pids[worker].insert(pid, key);
                shard_sessions[worker].insert(key, PolledSlot::new(session));
            } else {
                let rx = rx.expect("threaded clients always own an inbox");
                shard_drivers[worker]
                    .insert(key, ClientDriver::new(session, rx, router_tx.clone()));
            }
        };
        for reg in RegisterId::all(self.registers) {
            place(
                ProcessId::writer(reg),
                (reg, WRITER_SLOT),
                self.setup.make_writer_session(reg, protocol, session_cfg),
                &mut slots,
                &mut inboxes,
            );
            for j in 0..self.readers_per_register as u16 {
                let rid = reg.reader(self.readers_per_register, j);
                place(
                    ProcessId::Reader(rid),
                    (reg, j as u32 + 1),
                    self.setup.make_reader_session(reg, rid, protocol, session_cfg),
                    &mut slots,
                    &mut inboxes,
                );
            }
        }

        // Server threads: every honest server multiplexes all registers
        // and re-batches its acks per sender (when batching is enabled).
        // Each gets a control channel so the store can crash and restart
        // it mid-run; a durable store's servers share one counter pair.
        let counters = Arc::new(LogCounters::default());
        let mut ctl = BTreeMap::new();
        for s in ServerId::all(server_count) {
            slots.insert(ProcessId::Server(s), s.index());
            if self.crashed.contains(&s.0) {
                continue;
            }
            let (tx, rx) = unbounded::<(ProcessId, lucky_types::Message)>();
            inboxes.insert(ProcessId::Server(s), tx);
            let core: Box<dyn ServerCore> = match self.byzantine.remove(&s.0) {
                Some(byz) => byz,
                None => store_server_core(
                    self.setup,
                    self.batch,
                    self.durable_dir.clone().map(|d| (d, Arc::clone(&counters))),
                    s.0,
                ),
            };
            let (ctl_tx, ctl_rx) = unbounded::<ServerCtl>();
            ctl.insert(s.0, ctl_tx);
            server_threads.push(spawn_server_thread(
                format!("lucky-store-server-{}", s.0),
                ProcessId::Server(s),
                core,
                rx,
                ctl_rx,
                router_tx.clone(),
            ));
        }

        // Under the polled driver + TCP, each worker owns its slot's
        // listener (bound here so the router's sink can connect; the
        // worker itself accepts and reads, nonblocking).
        let mut worker_listeners: Vec<Option<TcpListener>> = (0..shard_count)
            .map(|w| {
                (polled && self.transport == Transport::Tcp).then(|| {
                    let _ = w;
                    TcpListener::bind("127.0.0.1:0").expect("bind polled-worker listener")
                })
            })
            .collect();

        // Router thread — and, under TCP, the socket fabric between the
        // router and the destination slots (servers + shard workers).
        let stats = Arc::new(Mutex::new(NetStats::default()));
        let tracer = Arc::new(lucky_trace::Tracer::new(self.trace));
        let (fabric, sinks) = match self.transport {
            Transport::Channel => (None, None),
            Transport::Tcp => {
                // The fabric builds receive sides only for slots hosting
                // channel-inboxed processes; polled-worker slots read
                // their own sockets, so only their sinks are added here.
                let (fabric, mut sinks) = build_fabric("lucky-store", &slots, &inboxes, &stats);
                for (w, listener) in worker_listeners.iter().enumerate() {
                    if let Some(listener) = listener {
                        let addr = listener.local_addr().expect("listener has an address");
                        let sink = std::net::TcpStream::connect(addr).expect("connect worker sink");
                        sink.set_nodelay(true).expect("set TCP_NODELAY");
                        sinks.insert(server_count + w, sink);
                    }
                }
                (Some(fabric), Some(sinks))
            }
        };
        let router_thread = spawn_router(
            "lucky-store-router",
            router_rx,
            inboxes,
            RouterConfig {
                latency: (self.cfg.min_latency, self.cfg.max_latency),
                seed: self.cfg.seed,
                batch: self.batch,
                slots,
                sinks,
            },
            Arc::clone(&stats),
        );

        // Shard workers: each owns its registers' client cores and a
        // shared history it appends completed operations to. Threaded
        // workers block per job; polled workers multiplex their
        // sessions on one nonblocking loop; reactor workers do the same
        // but sleep in `epoll_wait` (with an eventfd in their `JobPort`s
        // so submissions can interrupt the sleep).
        let epoch = Instant::now();
        let history = Arc::new(Mutex::new(History::new()));
        let wakeups = Arc::new(AtomicU64::new(0));
        let mut workers = Vec::new();
        let mut worker_txs: Vec<JobPort> = Vec::new();
        if polled {
            let worker_parts =
                shard_sessions.into_iter().zip(shard_inboxes).zip(shard_pids).enumerate();
            for (w, ((sessions, inboxes), by_pid)) in worker_parts {
                let (tx, rx) = unbounded::<Job>();
                let io = match worker_listeners[w].take() {
                    Some(listener) => PollIo::tcp(listener, &stats, &tracer),
                    None => PollIo::Channel(inboxes),
                };
                let worker = PolledWorker {
                    sessions,
                    by_pid,
                    jobs: rx,
                    router: router_tx.clone(),
                    io,
                    history: Arc::clone(&history),
                    stats: Arc::clone(&stats),
                    epoch,
                    tracer: Arc::clone(&tracer),
                };
                // The reactor needs a working eventfd to be woken for
                // job submissions; without one (exotic platform, fd
                // exhaustion) the worker degrades to the polled loop.
                let wake = match self.driver {
                    Driver::Reactor => match WakeFd::new() {
                        Ok(wake) => Some(Arc::new(wake)),
                        Err(_) => {
                            stats.lock().io_errors += 1;
                            tracer.note_io_error(
                                0,
                                "reactor eventfd unavailable; degrading to the polled loop",
                            );
                            None
                        }
                    },
                    _ => None,
                };
                worker_txs.push(JobPort { tx, wake: wake.clone() });
                let thread = match wake {
                    Some(wake) => {
                        let reactor = ReactorWorker { worker, wake, wakeups: Arc::clone(&wakeups) };
                        std::thread::Builder::new()
                            .name(format!("lucky-store-reactor-{w}"))
                            .spawn(move || reactor.run())
                    }
                    None => std::thread::Builder::new()
                        .name(format!("lucky-store-polled-{w}"))
                        .spawn(move || worker.run()),
                };
                workers.push(thread.expect("spawn shard worker"));
            }
        } else {
            for (w, drivers) in shard_drivers.into_iter().enumerate() {
                let (tx, rx) = unbounded::<Job>();
                worker_txs.push(JobPort { tx, wake: None });
                let history = Arc::clone(&history);
                let tracer = Arc::clone(&tracer);
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("lucky-store-shard-{w}"))
                        .spawn(move || run_worker(drivers, rx, history, epoch, tracer))
                        .expect("spawn shard worker"),
                );
            }
        }

        let handles = RegisterId::all(self.registers)
            .map(|reg| {
                // One sender per client core, following the same
                // placement as the drivers above.
                let slots = (0..=self.readers_per_register as u32)
                    .map(|slot| worker_txs[shard_for(reg, slot, shard_count)].clone())
                    .collect();
                (reg, NetRegisterHandle { reg, readers: self.readers_per_register, slots })
            })
            .collect();

        NetStore {
            router_tx,
            router_thread: Some(router_thread),
            server_threads,
            fabric,
            _workers: workers,
            handles,
            registers: self.registers,
            readers_per_register: self.readers_per_register,
            shard_count,
            stats,
            history,
            ctl,
            counters,
            setup: self.setup,
            batch: self.batch,
            durable_dir: self.durable_dir,
            wakeups,
            tracer,
        }
    }
}

/// A shard worker's job-submission endpoint: the job channel plus — for
/// a reactor worker — the eventfd that interrupts its `epoll_wait`.
/// Cloned into every register handle whose cores the worker hosts.
#[derive(Clone)]
pub(crate) struct JobPort {
    tx: Sender<Job>,
    wake: Option<Arc<WakeFd>>,
}

impl JobPort {
    /// Send a job, then wake the reactor (the order matters: the worker
    /// must find the job when the wakeup drains).
    fn send(&self, job: Job) {
        // A send failure means the store shut down; the dropped reply
        // sender (and notify guard, for futures) surfaces it.
        let _ = self.tx.send(job);
        if let Some(wake) = &self.wake {
            wake.wake();
        }
    }
}

impl Drop for JobPort {
    fn drop(&mut self) {
        // The reactor detects "no more jobs can ever arrive" by the job
        // channel disconnecting — which it only observes when awake.
        // Each dropping port fires the eventfd so the *last* drop (the
        // disconnect) always interrupts a blocked `epoll_wait`.
        if let Some(wake) = &self.wake {
            wake.wake();
        }
    }
}

/// Build one server's protocol core: a durable store opens (and on a
/// restart, replays) the server's per-register logs under `<dir>/s<i>`;
/// a plain store serves from memory.
fn store_server_core(
    setup: Setup,
    batch: BatchConfig,
    durable: Option<(PathBuf, Arc<LogCounters>)>,
    i: u16,
) -> Box<dyn ServerCore> {
    match durable {
        Some((dir, counters)) => {
            let backend = DurableBackend::open_with(dir.join(format!("s{i}")), counters)
                .expect("create the server's log directory");
            setup.make_server_mux_durable(batch, Box::new(backend))
        }
        None => setup.make_server_mux_batched(batch),
    }
}

/// Drive one shard worker: run jobs to completion on the drivers this
/// worker owns, appending every finished operation to the shared history.
fn run_worker(
    mut drivers: BTreeMap<(RegisterId, u32), ClientDriver>,
    jobs: Receiver<Job>,
    history: Arc<Mutex<History>>,
    epoch: Instant,
    tracer: Arc<lucky_trace::Tracer>,
) {
    while let Ok(job) = jobs.recv() {
        let Some(driver) = drivers.get_mut(&job.slot) else {
            // Unknown slot: handle construction prevents this; drop the
            // reply channel so the caller sees a disconnect.
            continue;
        };
        let invoked_at = Time(epoch.elapsed().as_micros() as u64);
        let result = driver.run_op(job.op.clone());
        let completed_at = Time(epoch.elapsed().as_micros() as u64);
        let completion = result.as_ref().ok().map(|out| (completed_at, out));
        if tracer.is_enabled() {
            let actor = crate::cluster::trace_actor(driver.id(), driver.reg());
            let write = matches!(job.op, Op::Write(_));
            match &result {
                Ok(out) => tracer.record_settle(
                    actor,
                    write,
                    out.rounds,
                    out.fast,
                    out.elapsed.as_micros() as u64,
                    driver.span(),
                ),
                Err(err) => tracer.record_failure(actor, write, err.fail_reason(), driver.span()),
            }
        }
        append_history(
            &history,
            driver.reg(),
            driver.id(),
            job.op,
            invoked_at,
            completion,
            driver.op_traffic(),
        );
        let _ = job.reply.send(result);
        // `job.notify` (if the op came from the futures API) drops here,
        // waking the future after the reply is observable.
    }
}

/// Shard placement: a register's writer (`slot` 0) lands on worker
/// `hash(RegisterId) mod shards` (register ids are already uniformly
/// assignable, so the hash is the id itself); its readers land on the
/// following workers, so a register's reads can overlap its write while
/// independent registers still spread across the pool.
fn shard_for(reg: RegisterId, slot: u32, shards: usize) -> usize {
    (reg.index() + slot as usize) % shards
}

/// A pending operation on a [`NetRegisterHandle`]: wait for its outcome
/// with [`OpTicket::wait`], or poll it with [`OpTicket::is_done`] /
/// [`OpTicket::wait_for`] without committing to a full blocking wait.
#[derive(Debug)]
pub struct OpTicket {
    rx: Receiver<Result<NetOutcome, NetError>>,
    /// The settled result, once observed by any polling call — kept so
    /// `is_done`/`wait_for`/`wait` compose in any order.
    settled: Option<Result<NetOutcome, NetError>>,
}

impl OpTicket {
    fn new(rx: Receiver<Result<NetOutcome, NetError>>) -> OpTicket {
        OpTicket { rx, settled: None }
    }

    /// Try to observe the result without blocking; cache it if present.
    fn poll(&mut self) {
        if self.settled.is_none() {
            match self.rx.try_recv() {
                Ok(result) => self.settled = Some(result),
                Err(crossbeam::channel::TryRecvError::Empty) => {}
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    self.settled = Some(Err(NetError::Disconnected));
                }
            }
        }
    }

    /// `true` iff the operation has settled (completed or failed):
    /// a subsequent [`OpTicket::wait`] will not block.
    pub fn is_done(&mut self) -> bool {
        self.poll();
        self.settled.is_some()
    }

    /// The settled result, if any, without blocking — [`crate::OpFuture`]'s
    /// poll body. Returns the cached result again once settled (fused).
    pub(crate) fn try_settled(&mut self) -> Option<Result<NetOutcome, NetError>> {
        self.poll();
        self.settled.clone()
    }

    /// Wait up to `timeout` for the operation to settle.
    ///
    /// Returns `Ok(Some(outcome))` when it completed, `Ok(None)` when it
    /// is still in flight after `timeout` (call again, or [`wait`]).
    ///
    /// # Errors
    ///
    /// [`NetError`] if the operation failed (deadline) or the store shut
    /// down mid-operation.
    ///
    /// [`wait`]: OpTicket::wait
    pub fn wait_for(
        &mut self,
        timeout: std::time::Duration,
    ) -> Result<Option<NetOutcome>, NetError> {
        if self.settled.is_none() {
            match self.rx.recv_timeout(timeout) {
                Ok(result) => self.settled = Some(result),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => return Ok(None),
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    self.settled = Some(Err(NetError::Disconnected));
                }
            }
        }
        self.settled.clone().expect("settled above").map(Some)
    }

    /// Block until the operation completes (or fails).
    ///
    /// # Errors
    ///
    /// [`NetError`] if the operation stalled past its deadline or the
    /// store shut down mid-operation.
    pub fn wait(self) -> Result<NetOutcome, NetError> {
        if let Some(result) = self.settled {
            return result;
        }
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(NetError::Disconnected),
        }
    }
}

/// A typed handle on one register of a [`NetStore`], taken once via
/// [`NetStore::register`]. Handles are `Send`: move them to whatever
/// thread should drive that register.
pub struct NetRegisterHandle {
    reg: RegisterId,
    readers: usize,
    /// One job port per client core: index 0 is the writer, `j + 1`
    /// reader `j`. Cores may live on different shard workers.
    slots: Vec<JobPort>,
}

impl fmt::Debug for NetRegisterHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetRegisterHandle")
            .field("reg", &self.reg)
            .field("readers", &self.readers)
            .finish_non_exhaustive()
    }
}

impl NetRegisterHandle {
    /// The register this handle addresses.
    pub fn id(&self) -> RegisterId {
        self.reg
    }

    /// Reader cores available to [`NetRegisterHandle::read`].
    pub fn reader_count(&self) -> usize {
        self.readers
    }

    fn submit(&self, slot: u32, op: Op) -> OpTicket {
        let (reply, rx) = unbounded();
        // A send failure means the store shut down; the dropped reply
        // sender surfaces as `Disconnected` from `wait`.
        self.slots[slot as usize].send(Job { slot: (self.reg, slot), op, reply, notify: None });
        OpTicket::new(rx)
    }

    /// Like [`NetRegisterHandle::submit`], wiring a wake channel through
    /// the job so an [`OpFuture`] learns when its ticket settles.
    fn submit_future(&self, slot: u32, op: Op) -> OpFuture {
        let (reply, rx) = unbounded();
        let notify = OpNotify::new();
        self.slots[slot as usize].send(Job {
            slot: (self.reg, slot),
            op,
            reply,
            notify: Some(NotifyGuard::new(Arc::clone(&notify))),
        });
        OpFuture::new(OpTicket::new(rx), notify)
    }

    /// Submit `WRITE(v)` and return a ticket to wait on. Writes on the
    /// same register run in submission order (single writer); reads on
    /// this register and operations on registers hosted by other shard
    /// workers run concurrently.
    pub fn invoke_write(&self, v: Value) -> OpTicket {
        self.submit(WRITER_SLOT, Op::Write(v))
    }

    /// Submit `READ()` on this register's reader `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is outside `0..reader_count()`.
    pub fn invoke_read(&self, j: u16) -> OpTicket {
        assert!(
            (j as usize) < self.readers,
            "reader {j} outside 0..{} for register {}",
            self.readers,
            self.reg
        );
        self.submit(j as u32 + 1, Op::Read)
    }

    /// Submit `WRITE(v)` and return a [`Future`](std::future::Future) of
    /// its outcome. The op is in flight from this call (submission does
    /// not wait for a poll); `.await` it from any executor —
    /// [`block_on`](crate::exec::block_on) and
    /// [`Executor`](crate::exec::Executor) ship with this crate, and
    /// [`run_all`](crate::exec::run_all) holds thousands in flight from
    /// one thread. Dropping the future abandons the wait, never the op.
    pub fn write_future(&self, v: Value) -> OpFuture {
        self.submit_future(WRITER_SLOT, Op::Write(v))
    }

    /// Submit `READ()` on reader `j` as a [`Future`](std::future::Future);
    /// see [`NetRegisterHandle::write_future`].
    ///
    /// # Panics
    ///
    /// Panics if `j` is outside `0..reader_count()`.
    pub fn read_future(&self, j: u16) -> OpFuture {
        assert!(
            (j as usize) < self.readers,
            "reader {j} outside 0..{} for register {}",
            self.readers,
            self.reg
        );
        self.submit_future(j as u32 + 1, Op::Read)
    }

    /// `WRITE(v)` as an `async fn`: sugar for
    /// [`NetRegisterHandle::write_future`]`.await`.
    ///
    /// # Errors
    ///
    /// [`NetError`] if the store shut down or the operation stalled.
    pub async fn write_async(&self, v: Value) -> Result<NetOutcome, NetError> {
        self.write_future(v).await
    }

    /// `READ()` on reader `j` as an `async fn`: sugar for
    /// [`NetRegisterHandle::read_future`]`.await`.
    ///
    /// # Errors
    ///
    /// [`NetError`] if the store shut down or the operation stalled.
    ///
    /// # Panics
    ///
    /// Panics if `j` is outside `0..reader_count()`.
    pub async fn read_async(&self, j: u16) -> Result<NetOutcome, NetError> {
        self.read_future(j).await
    }

    /// `WRITE(v)`, blocking until it completes.
    ///
    /// # Errors
    ///
    /// [`NetError`] if the store shut down or the operation stalled.
    pub fn write(&self, v: Value) -> Result<NetOutcome, NetError> {
        self.invoke_write(v).wait()
    }

    /// `READ()` on reader `j`, blocking until it completes.
    ///
    /// # Errors
    ///
    /// [`NetError`] if the store shut down or the operation stalled.
    ///
    /// # Panics
    ///
    /// Panics if `j` is outside `0..reader_count()`.
    pub fn read(&self, j: u16) -> Result<NetOutcome, NetError> {
        self.invoke_read(j).wait()
    }
}

/// A running threaded multi-register store: one server cluster serving
/// `registers` independent registers, client cores sharded across worker
/// threads by register.
///
/// Build one with [`NetStore::builder`] (or [`NetStore::from_config`] to
/// reuse a simulator-side [`StoreConfig`]); take per-register handles
/// with [`NetStore::register`]; call [`NetStore::shutdown`] when done.
pub struct NetStore {
    router_tx: Sender<Envelope>,
    router_thread: Option<JoinHandle<()>>,
    server_threads: Vec<JoinHandle<()>>,
    fabric: Option<TcpFabric>,
    /// Worker threads exit when every job sender (the untaken handles
    /// below plus whatever the caller took) is dropped.
    _workers: Vec<JoinHandle<()>>,
    handles: BTreeMap<RegisterId, NetRegisterHandle>,
    registers: usize,
    readers_per_register: usize,
    shard_count: usize,
    stats: Arc<Mutex<NetStats>>,
    history: Arc<Mutex<History>>,
    /// Control channel of each live server thread, by server index.
    ctl: BTreeMap<u16, Sender<ServerCtl>>,
    /// Durability counters shared by every server backend (and every
    /// restarted incarnation); rolled into [`NetStats`] by `stats()`.
    counters: Arc<LogCounters>,
    /// What `restart_server` needs to rebuild a core.
    setup: Setup,
    batch: BatchConfig,
    durable_dir: Option<PathBuf>,
    /// `epoll_wait` returns across every reactor worker (stays zero for
    /// the other drivers); rolled into [`NetStats`] by `stats()`.
    wakeups: Arc<AtomicU64>,
    /// Op tracer shared by every shard worker (disabled unless the
    /// builder enabled it); surfaced through [`NetStore::trace`].
    tracer: Arc<lucky_trace::Tracer>,
}

impl fmt::Debug for NetStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetStore")
            .field("registers", &self.registers)
            .field("readers_per_register", &self.readers_per_register)
            .field("shards", &self.shard_count)
            .field("servers", &self.server_threads.len())
            .finish_non_exhaustive()
    }
}

impl NetStore {
    /// Start building a store of the given variant. Accepts a [`Setup`]
    /// directly, or anything converting into one (`Params` selects the
    /// atomic algorithm, `TwoRoundParams` the two-round one).
    pub fn builder(setup: impl Into<Setup>, cfg: NetConfig) -> NetStoreBuilder {
        NetStoreBuilder {
            setup: setup.into(),
            cfg,
            registers: 1,
            readers_per_register: 1,
            shards: None,
            protocol: ProtocolConfig::default(),
            batch: BatchConfig::disabled(),
            transport: Transport::Channel,
            driver: Driver::Threaded,
            byzantine: BTreeMap::new(),
            crashed: Vec::new(),
            durable_dir: None,
            trace: lucky_trace::TraceConfig::disabled(),
        }
    }

    /// Build a store from a simulator-side [`StoreConfig`] (variant,
    /// namespace shape and protocol tunables) and a threaded-runtime
    /// [`NetConfig`] (latency band and timer). The config's protocol
    /// tunables carry over except the round-1 timer, which is re-derived
    /// from `net` (wall-clock latencies, not the simulator's synchrony
    /// bound, size it).
    pub fn from_config(cfg: StoreConfig, net: NetConfig) -> NetStore {
        assert!(
            cfg.groups == 1,
            "a NetStore is one group's engine; multi-group configs build through \
             lucky-shard's ShardNetStore"
        );
        NetStore::builder(cfg.cluster.setup, net)
            .registers(cfg.registers)
            .readers_per_register(cfg.readers_per_register)
            .protocol(cfg.cluster.protocol)
            .batch(cfg.batch)
            .trace(cfg.trace)
            .build()
    }

    /// Number of registers served.
    pub fn register_count(&self) -> usize {
        self.registers
    }

    /// Reader cores per register.
    pub fn readers_per_register(&self) -> usize {
        self.readers_per_register
    }

    /// Number of shard worker threads hosting client cores.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Take register `reg`'s handle (once).
    ///
    /// # Errors
    ///
    /// [`HandleError::UnknownRegister`] if `reg` is outside the
    /// namespace, [`HandleError::RegisterTaken`] if the handle was
    /// already taken.
    pub fn register(&mut self, reg: RegisterId) -> Result<NetRegisterHandle, HandleError> {
        if reg.index() >= self.registers {
            return Err(HandleError::UnknownRegister(reg));
        }
        self.handles.remove(&reg).ok_or(HandleError::RegisterTaken(reg))
    }

    /// Router statistics so far, including the per-register breakdown
    /// and — for a durable store — the log recovery/byte rollup across
    /// every server's backend.
    pub fn stats(&self) -> NetStats {
        let mut s = self.stats.lock().clone();
        s.recoveries = self.counters.recoveries();
        s.log_bytes = self.counters.log_bytes();
        s.reactor_wakeups = self.wakeups.load(Ordering::Relaxed);
        s
    }

    /// Crash server `i` mid-run: its thread drops the protocol core and
    /// discards every delivery until [`NetStore::restart_server`]. Under
    /// [`Transport::Tcp`] the slot's wire is severed too, so in-flight
    /// frames count as dropped, exactly like a never-spawned server's.
    /// No-op for a server that was built crashed (it has no thread).
    pub fn crash_server(&mut self, i: u16) {
        let Some(tx) = self.ctl.get(&i) else {
            return;
        };
        let _ = tx.send(ServerCtl::Crash);
        if self.fabric.is_some() {
            let _ = self.router_tx.send(Envelope::Sink { slot: i as usize, stream: None });
        }
    }

    /// Restart server `i`: its thread rebuilds the protocol core — for a
    /// durable store by replaying the server's `lucky-log` logs, so the
    /// incarnation rejoins the quorum with everything it ever acked; for
    /// a memory store amnesiac, with completely fresh state. Under
    /// [`Transport::Tcp`] the server's slot re-binds its listener on a
    /// fresh ephemeral port (see [`NetStore::server_addr`]) and the
    /// router installs the freshly connected sink. No-op for a server
    /// that was built crashed.
    ///
    /// Blocks until the server thread has performed the rebuild:
    /// messages sent after this returns cannot race the still-down
    /// window and be silently lost — which matters the moment the
    /// recovered server is quorum-critical (exactly `t` others down).
    pub fn restart_server(&mut self, i: u16) {
        let Some(tx) = self.ctl.get(&i) else {
            return;
        };
        let setup = self.setup;
        let batch = self.batch;
        let durable = self.durable_dir.clone().map(|d| (d, Arc::clone(&self.counters)));
        let (done_tx, done_rx) = unbounded::<()>();
        let _ = tx.send(ServerCtl::Restart(
            Box::new(move || store_server_core(setup, batch, durable, i)),
            done_tx,
        ));
        if let Some(fabric) = self.fabric.as_mut() {
            if let Some(sink) = fabric.rebind_slot(i as usize) {
                let _ =
                    self.router_tx.send(Envelope::Sink { slot: i as usize, stream: Some(sink) });
            }
        }
        // The server thread polls its control channel every CTL_POLL;
        // the bound only guards against a thread that already exited.
        let _ = done_rx.recv_timeout(std::time::Duration::from_secs(5));
    }

    /// A snapshot of the operation history so far (all registers
    /// interleaved; partition with `History::partition_by_register`).
    /// Wall-clock instants are microseconds since the store started.
    pub fn history(&self) -> History {
        self.history.lock().clone()
    }

    /// Check every register's sub-history against the atomicity
    /// conditions (§2.2), partitioned per register.
    ///
    /// # Errors
    ///
    /// Returns the violations found, across all registers.
    pub fn check_atomicity(&self) -> Result<(), lucky_checker::Violations> {
        lucky_checker::assert_atomic_per_register_traced(&self.history(), &self.tracer)
    }

    /// Check every register's sub-history against the regularity
    /// conditions (App. D), partitioned per register.
    ///
    /// # Errors
    ///
    /// Returns the violations found, across all registers.
    pub fn check_regularity(&self) -> Result<(), lucky_checker::Violations> {
        lucky_checker::assert_regular_per_register_traced(&self.history(), &self.tracer)
    }

    /// The shared op tracer (for wiring into external sinks).
    pub fn tracer(&self) -> &Arc<lucky_trace::Tracer> {
        &self.tracer
    }

    /// A rollup of everything the tracer has seen: lucky/slow op counts
    /// per kind, latency histograms (including the durable-log persist
    /// histogram), recent flight-recorder events and the last dump.
    /// Meaningful only for a store built with an enabled
    /// [`NetStoreBuilder::trace`] policy; a disabled store reports all
    /// zeros.
    pub fn trace(&self) -> lucky_trace::TraceReport {
        let mut report = self.tracer.report();
        report.persist_latency = self.counters.persist_latency();
        report
    }

    /// The loopback address server `s` listens on, when the store runs
    /// over [`Transport::Tcp`] (`None` under the channel transport or
    /// for a crashed server).
    pub fn server_addr(&self, s: ServerId) -> Option<std::net::SocketAddr> {
        self.fabric.as_ref().and_then(|f| f.server_addrs.get(&s).copied())
    }

    /// Stop the router, fabric and server threads and wait for them.
    /// Shard workers exit once every register handle is dropped;
    /// pending operations fail with [`NetError`].
    pub fn shutdown(&mut self) {
        self.handles.clear();
        let _ = self.router_tx.send(Envelope::Stop);
        if let Some(t) = self.router_thread.take() {
            let _ = t.join();
        }
        // Router gone → its socket sinks closed → the fabric's readers
        // see EOF and release the inbox senders as the fabric joins.
        if let Some(mut fabric) = self.fabric.take() {
            fabric.shutdown();
        }
        for t in self.server_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetStore {
    fn drop(&mut self) {
        // Non-blocking: signal stop; threads unwind on channel disconnect.
        let _ = self.router_tx.send(Envelope::Stop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucky_types::{OpKind, Params};
    use std::time::Duration;

    fn fast_cfg() -> NetConfig {
        NetConfig {
            min_latency: Duration::from_micros(50),
            max_latency: Duration::from_micros(200),
            seed: 1,
            timer: Duration::from_millis(5),
        }
    }

    #[test]
    fn eight_registers_hold_independent_values() {
        let params = Params::new(1, 0, 1, 0).unwrap();
        let mut store = NetStore::builder(params, fast_cfg()).registers(8).build();
        let handles: Vec<_> = RegisterId::all(8).map(|reg| store.register(reg).unwrap()).collect();
        // Interleave: submit every write, then wait for all of them.
        let tickets: Vec<_> = handles
            .iter()
            .map(|h| h.invoke_write(Value::from_u64(100 + h.id().0 as u64)))
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        for h in &handles {
            let r = h.read(0).unwrap();
            assert_eq!(r.value.as_u64(), Some(100 + h.id().0 as u64), "register {}", h.id());
            assert_eq!(r.reg, h.id());
            assert_eq!(r.kind, OpKind::Read);
        }
        store.check_atomicity().unwrap();
        let stats = store.stats();
        assert!(stats.per_register.len() >= 8, "per-register stats recorded");
        assert!(stats.register(RegisterId(0)).messages > 0);
        store.shutdown();
    }

    #[test]
    fn tcp_encode_path_reuses_frames_after_warmup() {
        // Satellite of the sharding PR: the router used to build a fresh
        // Vec per outgoing TCP frame. With the frame pool + PacketEncoder
        // every steady-state encode reuses a recycled buffer, so
        // `frame_allocs` (pool misses) must stop growing after warmup.
        let params = Params::new(1, 0, 1, 0).unwrap();
        let mut store =
            NetStore::builder(params, fast_cfg()).registers(1).transport(Transport::Tcp).build();
        let h = store.register(RegisterId(0)).unwrap();
        for i in 0..8 {
            h.write(Value::from_u64(i)).unwrap();
            h.read(0).unwrap();
        }
        let warm = store.stats().frame_allocs;
        assert!(warm > 0, "TCP ops must have encoded at least one frame");
        for i in 0..32 {
            h.write(Value::from_u64(100 + i)).unwrap();
            h.read(0).unwrap();
        }
        let after = store.stats().frame_allocs;
        assert_eq!(
            after, warm,
            "steady-state encodes must hit the frame pool, not allocate \
             ({warm} allocs after warmup, {after} after 64 more ops)"
        );
        store.shutdown();
    }

    #[test]
    fn register_handles_are_take_once_with_descriptive_errors() {
        let params = Params::new(1, 0, 1, 0).unwrap();
        let mut store = NetStore::builder(params, fast_cfg()).registers(2).build();
        let h = store.register(RegisterId(1)).unwrap();
        assert_eq!(
            store.register(RegisterId(1)).unwrap_err(),
            HandleError::RegisterTaken(RegisterId(1))
        );
        assert_eq!(
            store.register(RegisterId(9)).unwrap_err(),
            HandleError::UnknownRegister(RegisterId(9))
        );
        drop(h);
        store.shutdown();
    }

    #[test]
    fn history_partitions_per_register() {
        let params = Params::new(1, 0, 1, 0).unwrap();
        let mut store = NetStore::builder(params, fast_cfg()).registers(3).build();
        for reg in RegisterId::all(3) {
            let h = store.register(reg).unwrap();
            h.write(Value::from_u64(7)).unwrap(); // same value in every register
            h.read(0).unwrap();
        }
        let history = store.history();
        assert_eq!(history.registers().len(), 3);
        assert_eq!(history.ops.len(), 6);
        // The same value written to three different registers is not a
        // duplicate under per-register checking.
        store.check_atomicity().unwrap();
        store.shutdown();
    }

    #[test]
    fn tickets_outlive_their_handle() {
        // Submit through the ticket API, then drop the handle before
        // waiting: the shard worker owns the driver, so the operations
        // complete and the tickets resolve normally.
        let params = Params::new(1, 0, 1, 0).unwrap();
        let mut store = NetStore::builder(params, fast_cfg()).registers(2).build();
        let h = store.register(RegisterId(0)).unwrap();
        let w = h.invoke_write(Value::from_u64(9));
        let r = h.invoke_read(0);
        drop(h);
        assert_eq!(w.wait().unwrap().kind, OpKind::Write);
        let read = r.wait().unwrap();
        assert_eq!(read.kind, OpKind::Read);
        assert_eq!(read.value.as_u64(), Some(9), "ticket resolves after the handle is gone");
        store.shutdown();
    }

    #[test]
    fn tickets_after_shutdown_fail_with_disconnected() {
        // A handle kept across shutdown: the op can no longer complete
        // (router and servers are gone), and the ticket reports it as an
        // error instead of hanging.
        let params = Params::new(1, 0, 1, 0).unwrap();
        let mut cfg = fast_cfg();
        cfg.timer = Duration::from_millis(1); // keep the deadline short
        let mut store = NetStore::builder(params, cfg).registers(1).build();
        let h = store.register(RegisterId(0)).unwrap();
        h.write(Value::from_u64(1)).unwrap();
        store.shutdown();
        let t = h.invoke_write(Value::from_u64(2));
        assert!(
            matches!(t.wait(), Err(NetError::Disconnected) | Err(NetError::TimedOut)),
            "post-shutdown tickets must fail, not hang"
        );
        drop(h);
    }

    #[test]
    #[should_panic(expected = "reader 2 outside 0..2")]
    fn out_of_range_reader_is_rejected_up_front() {
        let params = Params::new(1, 0, 1, 0).unwrap();
        let mut store =
            NetStore::builder(params, fast_cfg()).registers(1).readers_per_register(2).build();
        let h = store.register(RegisterId(0)).unwrap();
        let _ = h.invoke_read(2); // only readers 0 and 1 exist
    }

    #[test]
    fn double_take_and_unknown_register_after_partial_take() {
        // Interleave takes and failures: every combination of taken /
        // untaken / unknown answers with the precise error.
        let params = Params::new(1, 0, 1, 0).unwrap();
        let mut store = NetStore::builder(params, fast_cfg()).registers(3).build();
        let h1 = store.register(RegisterId(1)).unwrap();
        assert_eq!(
            store.register(RegisterId(1)).unwrap_err(),
            HandleError::RegisterTaken(RegisterId(1))
        );
        // Unknown stays unknown no matter how many takes happened.
        assert_eq!(
            store.register(RegisterId(3)).unwrap_err(),
            HandleError::UnknownRegister(RegisterId(3))
        );
        // The other registers are still takeable exactly once.
        let h0 = store.register(RegisterId(0)).unwrap();
        let h2 = store.register(RegisterId(2)).unwrap();
        assert_eq!(
            store.register(RegisterId(0)).unwrap_err(),
            HandleError::RegisterTaken(RegisterId(0))
        );
        drop((h0, h1, h2));
        store.shutdown();
    }

    #[test]
    #[should_panic(expected = "both crashed and Byzantine")]
    fn crashed_and_byzantine_on_one_server_is_rejected() {
        use lucky_core::byz::Mute;
        let params = Params::new(2, 1, 1, 0).unwrap();
        let _ = NetStore::builder(params, fast_cfg())
            .crashed(1)
            .byzantine(1, Box::new(Mute::new()))
            .build();
    }

    #[test]
    fn from_config_carries_protocol_tunables() {
        use lucky_core::StoreConfig;
        let params = Params::new(1, 0, 1, 0).unwrap();
        // Disable the fast paths through the StoreConfig: the threaded
        // store must honour them (a fast one-round write would otherwise
        // be overwhelmingly likely at this latency band).
        let cfg = StoreConfig::synchronous(params)
            .registers(2)
            .with_protocol(lucky_core::ProtocolConfig::slow_only(100));
        let mut store = NetStore::from_config(cfg, fast_cfg());
        let h = store.register(RegisterId(0)).unwrap();
        for i in 1..=3u64 {
            let out = h.write(Value::from_u64(i)).unwrap();
            assert!(!out.fast, "fast path disabled via StoreConfig");
            assert!(out.rounds > 1);
        }
        drop(h);
        store.shutdown();
    }

    #[test]
    fn reads_overlap_writes_on_the_same_register() {
        let params = Params::new(1, 0, 1, 0).unwrap();
        let mut store = NetStore::builder(params, fast_cfg())
            .registers(1)
            .readers_per_register(2)
            .shards(3)
            .build();
        let h = store.register(RegisterId(0)).unwrap();
        h.write(Value::from_u64(1)).unwrap();
        // Submit a write and two reads without waiting: the reader cores
        // live on different shard workers, so the reads run while the
        // write is still in flight.
        let w = h.invoke_write(Value::from_u64(2));
        let r0 = h.invoke_read(0);
        let r1 = h.invoke_read(1);
        for t in [r0, r1] {
            let out = t.wait().unwrap();
            let v = out.value.as_u64().unwrap();
            assert!(v == 1 || v == 2, "concurrent read sees old or new value, got {v}");
        }
        w.wait().unwrap();
        store.check_atomicity().unwrap();
        store.shutdown();
    }

    #[test]
    fn durable_server_restart_replays_its_log() {
        // 1 writer fault tolerated (t=1, S=4): crash one server, write
        // through the remaining quorum, restart it, then crash a
        // *different* server — the restarted one must carry the weight,
        // which it only can if its log replayed.
        let params = Params::new(2, 1, 1, 0).unwrap();
        let dir = lucky_log::TempDir::new("net-restart");
        let mut store =
            NetStore::builder(params, fast_cfg()).registers(2).durable(dir.path()).build();
        let h0 = store.register(RegisterId(0)).unwrap();
        let h1 = store.register(RegisterId(1)).unwrap();
        h0.write(Value::from_u64(10)).unwrap();
        h1.write(Value::from_u64(20)).unwrap();
        store.crash_server(0);
        h0.write(Value::from_u64(11)).unwrap();
        store.restart_server(0);
        store.crash_server(3);
        // The quorum now needs server 0's recovered state.
        assert_eq!(h0.read(0).unwrap().value.as_u64(), Some(11));
        assert_eq!(h1.read(0).unwrap().value.as_u64(), Some(20));
        store.check_atomicity().unwrap();
        let stats = store.stats();
        assert!(stats.recoveries > 0, "restart replayed at least one register log");
        assert!(stats.log_bytes > 0, "snapshots were committed to disk");
        store.shutdown();
    }

    #[test]
    fn tcp_restart_rebinds_the_listener_and_replays() {
        let params = Params::new(2, 1, 1, 0).unwrap();
        let dir = lucky_log::TempDir::new("net-tcp-restart");
        let mut store = NetStore::builder(params, fast_cfg())
            .transport(Transport::Tcp)
            .durable(dir.path())
            .build();
        let h = store.register(RegisterId(0)).unwrap();
        h.write(Value::from_u64(1)).unwrap();
        let before = store.server_addr(ServerId(2)).expect("TCP store knows its addresses");
        store.crash_server(2);
        h.write(Value::from_u64(2)).unwrap();
        store.restart_server(2);
        let after = store.server_addr(ServerId(2)).expect("restarted slot re-binds");
        assert_ne!(before, after, "the restarted server listens on a fresh port");
        // Force the recovered server into the quorum.
        store.crash_server(0);
        assert_eq!(h.read(0).unwrap().value.as_u64(), Some(2));
        store.check_atomicity().unwrap();
        assert!(store.stats().recoveries > 0);
        store.shutdown();
    }

    #[test]
    fn amnesiac_restart_keeps_the_counters_at_zero() {
        // Without `durable`, a restart is crash-stop followed by a fresh
        // empty server: the cluster still answers (quorums cover it) and
        // no recovery is ever counted.
        let params = Params::new(2, 1, 1, 0).unwrap();
        let mut store = NetStore::builder(params, fast_cfg()).build();
        let h = store.register(RegisterId(0)).unwrap();
        h.write(Value::from_u64(5)).unwrap();
        store.crash_server(1);
        store.restart_server(1);
        assert_eq!(h.read(0).unwrap().value.as_u64(), Some(5));
        let stats = store.stats();
        assert_eq!(stats.recoveries, 0);
        assert_eq!(stats.log_bytes, 0);
        store.check_atomicity().unwrap();
        store.shutdown();
    }

    #[test]
    fn shards_distribute_registers() {
        let params = Params::new(1, 0, 1, 0).unwrap();
        let mut store = NetStore::builder(params, fast_cfg()).registers(6).shards(3).build();
        assert_eq!(store.shard_count(), 3);
        let tickets: Vec<_> = RegisterId::all(6)
            .map(|reg| store.register(reg).unwrap())
            .map(|h| h.invoke_write(Value::from_u64(1 + h.id().0 as u64)))
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        store.check_atomicity().unwrap();
        store.shutdown();
    }
}
