//! The latency-injecting router thread.

use crossbeam::channel::{Receiver, Sender};
use lucky_types::{Message, ProcessId, RegisterId};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message travelling between two processes.
#[derive(Debug)]
pub(crate) enum Envelope {
    /// Deliver `msg` from `from` to `to` after the injected latency.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Recipient.
        to: ProcessId,
        /// Payload.
        msg: Message,
    },
    /// Tear the cluster down.
    Stop,
}

/// Per-register traffic counters (one entry of [`NetStats::per_register`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegisterStats {
    /// Messages routed for this register.
    pub messages: u64,
    /// Estimated wire bytes routed for this register.
    pub bytes: u64,
}

/// Counters the router maintains; readable via `NetCluster::stats` /
/// `NetStore::stats`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NetStats {
    /// Messages routed.
    pub messages: u64,
    /// Estimated wire bytes routed.
    pub bytes: u64,
    /// Messages dropped because the recipient was unknown or its inbox
    /// closed (e.g. a crashed server).
    pub dropped: u64,
    /// Traffic broken down by the register each message names.
    pub per_register: BTreeMap<RegisterId, RegisterStats>,
}

impl NetStats {
    /// The traffic counters for register `reg` (zero if never routed).
    pub fn register(&self, reg: RegisterId) -> RegisterStats {
        self.per_register.get(&reg).copied().unwrap_or_default()
    }
}

struct InFlight {
    due: Instant,
    seq: u64,
    from: ProcessId,
    to: ProcessId,
    msg: Message,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// Spawn the router thread (shared by `NetCluster` and `NetStore`).
pub(crate) fn spawn_router(
    name: &str,
    rx: Receiver<Envelope>,
    inboxes: BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    latency: (Duration, Duration),
    seed: u64,
    stats: Arc<Mutex<NetStats>>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || run_router(rx, inboxes, latency, seed, stats))
        .expect("spawn router thread")
}

/// Run the router loop until a [`Envelope::Stop`] arrives or every sender
/// disconnects.
pub(crate) fn run_router(
    rx: Receiver<Envelope>,
    inboxes: BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    latency: (Duration, Duration),
    seed: u64,
    stats: Arc<Mutex<NetStats>>,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut heap: BinaryHeap<InFlight> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|m| m.due <= now) {
            let m = heap.pop().expect("peeked above");
            let mut s = stats.lock();
            match inboxes.get(&m.to) {
                Some(tx) if tx.send((m.from, m.msg)).is_ok() => {}
                _ => s.dropped += 1,
            }
        }
        // Wait for the next envelope or the next due instant.
        let received = match heap.peek() {
            Some(m) => {
                let timeout = m.due.saturating_duration_since(Instant::now());
                match rx.recv_timeout(timeout) {
                    Ok(env) => Some(env),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
            }
            None => match rx.recv() {
                Ok(env) => Some(env),
                Err(_) => return,
            },
        };
        match received {
            Some(Envelope::Deliver { from, to, msg }) => {
                let (min, max) = latency;
                let delay = if max > min {
                    min + Duration::from_micros(rng.gen_range(0..=(max - min).as_micros() as u64))
                } else {
                    min
                };
                {
                    let mut s = stats.lock();
                    let bytes = msg.wire_size() as u64;
                    s.messages += 1;
                    s.bytes += bytes;
                    let per = s.per_register.entry(msg.register()).or_default();
                    per.messages += 1;
                    per.bytes += bytes;
                }
                seq += 1;
                heap.push(InFlight { due: Instant::now() + delay, seq, from, to, msg });
            }
            Some(Envelope::Stop) => return,
            None => {}
        }
    }
}
