//! The latency-injecting router thread.
//!
//! The router models the network fabric between the client node and the
//! server processes. Besides sampling per-message latency, it is where
//! **wire-message batching** happens in this runtime: with an enabled
//! [`BatchConfig`], messages bound for the same destination *socket-slot*
//! (a server, or the shard worker hosting a group of client cores) are
//! coalesced — up to `max_msgs` parts, waiting at most
//! `max_delay_micros` for co-travellers — and travel as one wire message
//! with a single sampled delay. At delivery, runs of parts that share a
//! sender and recipient are handed to the inbox as one
//! [`Message::Batch`]; parts from different senders are fanned out
//! back-to-back, preserving sender identity (the channel, not the
//! payload, authenticates the sender — a batch can never forge one).

use crossbeam::channel::{Receiver, Sender};
use lucky_types::{BatchConfig, Message, ProcessId, RegisterId, ServerId};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message travelling between two processes.
#[derive(Debug)]
pub(crate) enum Envelope {
    /// Deliver `msg` from `from` to `to` after the injected latency.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Recipient.
        to: ProcessId,
        /// Payload.
        msg: Message,
    },
    /// Tear the cluster down.
    Stop,
}

/// Per-register traffic counters (one entry of [`NetStats::per_register`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegisterStats {
    /// Protocol messages routed for this register (batch parts count
    /// individually — this is the register's share of the traffic).
    pub messages: u64,
    /// Estimated wire bytes routed for this register.
    pub bytes: u64,
    /// Wire batches that carried at least one of this register's
    /// messages.
    pub batches_sent: u64,
}

/// Traffic counters for one destination server (one entry of
/// [`NetStats::per_server`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServerStats {
    /// Wire messages delivered to this server (a batch counts once).
    pub messages: u64,
    /// Protocol messages those wire messages carried.
    pub parts: u64,
    /// Wire messages that carried more than one part.
    pub batches_sent: u64,
    /// Estimated wire bytes.
    pub bytes: u64,
}

impl ServerStats {
    /// Mean parts per wire message to this server (1.0 when unbatched).
    pub fn msgs_per_batch(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.parts as f64 / self.messages as f64
        }
    }
}

/// Counters the router maintains; readable via `NetCluster::stats` /
/// `NetStore::stats`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct NetStats {
    /// Wire messages routed: a batch counts **once** — this is the
    /// message complexity the batching layer reduces.
    pub messages: u64,
    /// Protocol messages carried (batch parts count individually);
    /// equals `messages` when batching is disabled.
    pub parts: u64,
    /// Wire messages that carried more than one part.
    pub batches_sent: u64,
    /// Estimated wire bytes routed.
    pub bytes: u64,
    /// Protocol messages dropped because the recipient was unknown or its
    /// inbox closed (e.g. a crashed server).
    pub dropped: u64,
    /// Traffic broken down by the register each protocol message names.
    pub per_register: BTreeMap<RegisterId, RegisterStats>,
    /// Traffic broken down by destination server.
    pub per_server: BTreeMap<ServerId, ServerStats>,
}

impl NetStats {
    /// The traffic counters for register `reg` (zero if never routed).
    pub fn register(&self, reg: RegisterId) -> RegisterStats {
        self.per_register.get(&reg).copied().unwrap_or_default()
    }

    /// The traffic counters for server `s` (zero if never routed).
    pub fn server(&self, s: ServerId) -> ServerStats {
        self.per_server.get(&s).copied().unwrap_or_default()
    }

    /// Mean parts per wire message (1.0 when batching is disabled).
    pub fn msgs_per_batch(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.parts as f64 / self.messages as f64
        }
    }
}

/// Where wire traffic can be coalesced: the destination's socket-slot.
/// Servers get one slot each; client processes map to the shard worker
/// that hosts their core (so acks bound for cores on one worker share a
/// wire). Built by the cluster/store builders.
pub(crate) type SlotMap = BTreeMap<ProcessId, usize>;

/// One part of a wire message: sender, recipient, payload.
type Part = (ProcessId, ProcessId, Message);

struct InFlight {
    due: Instant,
    seq: u64,
    parts: Vec<Part>,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// Messages staged for one destination slot, waiting for co-travellers.
struct SlotBuf {
    parts: Vec<Part>,
    /// Flattened protocol messages across `parts` (an envelope may
    /// itself be a pre-batched ack batch): the `max_msgs` bound is on
    /// this count, not on envelopes.
    part_total: usize,
    oldest: Instant,
}

/// Everything the router needs besides its channels.
pub(crate) struct RouterConfig {
    pub(crate) latency: (Duration, Duration),
    pub(crate) seed: u64,
    pub(crate) batch: BatchConfig,
    pub(crate) slots: SlotMap,
}

/// Spawn the router thread (shared by `NetCluster` and `NetStore`).
pub(crate) fn spawn_router(
    name: &str,
    rx: Receiver<Envelope>,
    inboxes: BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    cfg: RouterConfig,
    stats: Arc<Mutex<NetStats>>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || Router { rx, inboxes, cfg, stats }.run())
        .expect("spawn router thread")
}

struct Router {
    rx: Receiver<Envelope>,
    inboxes: BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    cfg: RouterConfig,
    stats: Arc<Mutex<NetStats>>,
}

impl Router {
    /// Run the router loop until a [`Envelope::Stop`] arrives or every
    /// sender disconnects.
    fn run(mut self) {
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        let mut heap: BinaryHeap<InFlight> = BinaryHeap::new();
        let mut staged: BTreeMap<usize, SlotBuf> = BTreeMap::new();
        let mut seq = 0u64;
        let max_delay = Duration::from_micros(self.cfg.batch.max_delay_micros);
        loop {
            // Drain every envelope that is already queued *before*
            // flushing any slot: messages that became ready together
            // coalesce even with max_delay_micros = 0 (a broadcast's
            // envelopes sit in the channel as one burst).
            loop {
                match self.rx.try_recv() {
                    Ok(Envelope::Deliver { from, to, msg }) => {
                        self.accept(from, to, msg, &mut staged, &mut rng, &mut heap, &mut seq);
                    }
                    Ok(Envelope::Stop) => return,
                    Err(crossbeam::channel::TryRecvError::Empty) => break,
                    Err(crossbeam::channel::TryRecvError::Disconnected) => return,
                }
            }
            // Deliver everything due.
            let now = Instant::now();
            while heap.peek().is_some_and(|m| m.due <= now) {
                let m = heap.pop().expect("peeked above");
                self.deliver(m.parts);
            }
            // Flush every staged slot whose oldest part has waited long
            // enough.
            let due_slots: Vec<usize> = staged
                .iter()
                .filter(|(_, buf)| buf.oldest + max_delay <= now)
                .map(|(&slot, _)| slot)
                .collect();
            for slot in due_slots {
                let buf = staged.remove(&slot).expect("listed above");
                self.launch(buf.parts, &mut rng, &mut heap, &mut seq);
            }
            // Wait for the next envelope, the next due delivery, or the
            // next slot flush deadline — whichever comes first.
            let next_due = heap.peek().map(|m| m.due);
            let next_flush = staged.values().map(|b| b.oldest + max_delay).min();
            let deadline = match (next_due, next_flush) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            match deadline {
                Some(at) => {
                    let timeout = at.saturating_duration_since(Instant::now());
                    match self.rx.recv_timeout(timeout) {
                        Ok(Envelope::Deliver { from, to, msg }) => {
                            self.accept(from, to, msg, &mut staged, &mut rng, &mut heap, &mut seq);
                        }
                        Ok(Envelope::Stop) => return,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    }
                }
                None => match self.rx.recv() {
                    Ok(Envelope::Deliver { from, to, msg }) => {
                        self.accept(from, to, msg, &mut staged, &mut rng, &mut heap, &mut seq);
                    }
                    Ok(Envelope::Stop) => return,
                    Err(_) => return,
                },
            }
        }
    }

    /// Accept one envelope: stage it on its destination slot (batching
    /// enabled and a mapped destination) or put it straight in flight.
    #[allow(clippy::too_many_arguments)]
    fn accept(
        &self,
        from: ProcessId,
        to: ProcessId,
        msg: Message,
        staged: &mut BTreeMap<usize, SlotBuf>,
        rng: &mut SmallRng,
        heap: &mut BinaryHeap<InFlight>,
        seq: &mut u64,
    ) {
        let slot = self.cfg.slots.get(&to).copied();
        match slot {
            Some(slot) if self.cfg.batch.enabled => {
                let count = msg.part_count();
                // Strict size bound on *flattened* parts (an envelope may
                // itself be a pre-batched ack batch): if joining would
                // push the buffer over max_msgs, ship the buffer first.
                if let Some(buf) = staged.get(&slot) {
                    if buf.part_total + count > self.cfg.batch.max_msgs {
                        let buf = staged.remove(&slot).expect("checked above");
                        self.launch(buf.parts, rng, heap, seq);
                    }
                }
                let buf = staged.entry(slot).or_insert_with(|| SlotBuf {
                    parts: Vec::new(),
                    part_total: 0,
                    oldest: Instant::now(),
                });
                buf.parts.push((from, to, msg));
                buf.part_total += count;
                if buf.part_total >= self.cfg.batch.max_msgs {
                    let buf = staged.remove(&slot).expect("just inserted");
                    self.launch(buf.parts, rng, heap, seq);
                }
            }
            // Batching disabled (or an unmapped destination): every
            // message is its own wire message.
            _ => self.launch(vec![(from, to, msg)], rng, heap, seq),
        }
    }

    /// Account one wire message carrying `parts` and put it in flight
    /// with a single sampled delay.
    fn launch(
        &self,
        parts: Vec<Part>,
        rng: &mut SmallRng,
        heap: &mut BinaryHeap<InFlight>,
        seq: &mut u64,
    ) {
        debug_assert!(!parts.is_empty());
        let (min, max) = self.cfg.latency;
        let delay = if max > min {
            min + Duration::from_micros(rng.gen_range(0..=(max - min).as_micros() as u64))
        } else {
            min
        };
        {
            let mut s = self.stats.lock();
            // A part may itself be a pre-batched envelope (a server's
            // re-batched acks travel as one `Message::Batch` send):
            // protocol-message accounting always uses the flattened view.
            let total_parts: u64 = parts.iter().map(|(_, _, m)| m.part_count() as u64).sum();
            let part_bytes: u64 = parts.iter().map(|(_, _, m)| m.wire_size() as u64).sum();
            // Coalesced envelopes share one wire frame: one extra header.
            let bytes = if parts.len() > 1 { 12 + part_bytes } else { part_bytes };
            let batched = total_parts > 1;
            s.messages += 1;
            s.parts += total_parts;
            s.bytes += bytes;
            if batched {
                s.batches_sent += 1;
            }
            let mut regs_seen: Vec<RegisterId> = Vec::new();
            for (_, _, m) in &parts {
                m.for_each_part(|part| {
                    let Some(reg) = part.register() else {
                        return;
                    };
                    let per = s.per_register.entry(reg).or_default();
                    per.messages += 1;
                    per.bytes += part.wire_size() as u64;
                    if batched && !regs_seen.contains(&reg) {
                        regs_seen.push(reg);
                        per.batches_sent += 1;
                    }
                });
            }
            // Per-server breakdown: server slots hold one server only.
            if let Some(server) = parts[0].1.as_server() {
                if parts.iter().all(|(_, to, _)| to.as_server() == Some(server)) {
                    let per = s.per_server.entry(server).or_default();
                    per.messages += 1;
                    per.parts += total_parts;
                    per.bytes += bytes;
                    if batched {
                        per.batches_sent += 1;
                    }
                }
            }
        }
        *seq += 1;
        heap.push(InFlight { due: Instant::now() + delay, seq: *seq, parts });
    }

    /// Hand a due wire message to its recipients: runs of parts sharing
    /// one sender and one recipient arrive as a single
    /// [`Message::Batch`]; sender changes fan out as separate inbox
    /// sends, back-to-back.
    fn deliver(&mut self, parts: Vec<Part>) {
        let mut run: Vec<Message> = Vec::new();
        let mut run_key: Option<(ProcessId, ProcessId)> = None;
        let flush = |key: Option<(ProcessId, ProcessId)>, run: &mut Vec<Message>| {
            let Some((from, to)) = key else {
                return;
            };
            let msg = if run.len() == 1 {
                run.pop().expect("length checked")
            } else {
                Message::batch(std::mem::take(run))
            };
            run.clear();
            // `dropped` counts protocol messages, so a lost batch counts
            // each of its parts.
            let lost = msg.part_count() as u64;
            let mut s = self.stats.lock();
            match self.inboxes.get(&to) {
                Some(tx) if tx.send((from, msg)).is_ok() => {}
                _ => s.dropped += lost,
            }
        };
        for (from, to, msg) in parts {
            if run_key != Some((from, to)) {
                flush(run_key, &mut run);
                run_key = Some((from, to));
            }
            run.push(msg);
        }
        flush(run_key, &mut run);
    }
}
