//! The latency-injecting router thread.
//!
//! The router models the network fabric between the client node and the
//! server processes. Besides sampling per-message latency, it is where
//! **wire-message batching** happens in this runtime: with an enabled
//! [`BatchConfig`], messages bound for the same destination *socket-slot*
//! (a server, or the shard worker hosting a group of client cores) are
//! coalesced — up to `max_msgs` parts, waiting at most
//! `max_delay_micros` for co-travellers — and travel as one wire message
//! with a single sampled delay. At delivery, runs of parts that share a
//! sender and recipient are handed to the inbox as one
//! [`Message::Batch`]; parts from different senders are fanned out
//! back-to-back, preserving sender identity (the channel, not the
//! payload, authenticates the sender — a batch can never forge one).

use crossbeam::channel::{Receiver, Sender};
use lucky_types::{BatchConfig, Message, ProcessId, RegisterId, ServerId};
use lucky_wire::PacketPart;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BinaryHeap};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message travelling between two processes.
///
/// `Deliver` is essentially every envelope ever sent (`Stop` appears
/// once per channel at teardown), so boxing its payload to shrink the
/// enum would buy nothing and cost an allocation per delivered message.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum Envelope {
    /// Deliver `msg` from `from` to `to` after the injected latency.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Recipient.
        to: ProcessId,
        /// Payload.
        msg: Message,
    },
    /// Swap the write half of one destination slot's socket (TCP
    /// transport only): `Some` installs a freshly connected sink after
    /// a slot re-binds its listener (server restart), `None` severs the
    /// wire (server crash — frames bound for the slot count as
    /// dropped, exactly like a never-spawned server's).
    Sink {
        /// Destination socket-slot whose sink changes.
        slot: usize,
        /// The new write stream, or `None` to sever.
        stream: Option<TcpStream>,
    },
    /// Tear the cluster down.
    Stop,
}

/// Per-register traffic counters (one entry of [`NetStats::per_register`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegisterStats {
    /// Protocol messages routed for this register (batch parts count
    /// individually — this is the register's share of the traffic).
    pub messages: u64,
    /// Estimated wire bytes routed for this register.
    pub bytes: u64,
    /// Wire batches that carried at least one of this register's
    /// messages.
    pub batches_sent: u64,
}

/// Traffic counters for one destination server (one entry of
/// [`NetStats::per_server`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServerStats {
    /// Wire messages delivered to this server (a batch counts once).
    pub messages: u64,
    /// Protocol messages those wire messages carried.
    pub parts: u64,
    /// Wire messages that carried more than one part.
    pub batches_sent: u64,
    /// Estimated wire bytes.
    pub bytes: u64,
}

impl ServerStats {
    /// Mean parts per wire message to this server (1.0 when unbatched).
    pub fn msgs_per_batch(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.parts as f64 / self.messages as f64
        }
    }
}

/// Rollup for one server group of a sharded store (one entry of
/// [`NetStats::per_group`]). Filled by `lucky-shard`'s stats
/// aggregation — a single-group [`NetStore`](crate::NetStore) leaves
/// the map empty.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct GroupStats {
    /// Completed operations served by the group.
    pub ops: u64,
    /// Framed bytes the group's router staged for its sockets.
    pub wire_bytes: u64,
    /// Register logs replayed by the group's restarted durable servers.
    pub recoveries: u64,
    /// The group's lucky-read ratio from its `TraceReport` (`NaN`-free:
    /// 0.0 when the group traced no reads or tracing is disabled).
    pub lucky_ratio: f64,
}

/// Counters the router maintains; readable via `NetCluster::stats` /
/// `NetStore::stats`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct NetStats {
    /// Wire messages routed: a batch counts **once** — this is the
    /// message complexity the batching layer reduces.
    pub messages: u64,
    /// Protocol messages carried (batch parts count individually);
    /// equals `messages` when batching is disabled.
    pub parts: u64,
    /// Wire messages that carried more than one part.
    pub batches_sent: u64,
    /// Wire payload bytes routed, computed from the codec-exact
    /// [`Message::wire_size`] (plus one notional frame header per
    /// coalesced wire message). Under [`Transport::Tcp`] this is the
    /// payload portion of what actually crosses the sockets;
    /// [`NetStats::wire_bytes`] adds the framing.
    ///
    /// [`Transport::Tcp`]: crate::Transport::Tcp
    pub bytes: u64,
    /// Actual framed bytes of every wire message staged for its socket
    /// (frame headers, packet envelopes and payloads). Zero under
    /// [`Transport::Channel`], where no bytes ever exist; under
    /// [`Transport::Tcp`] it exceeds [`NetStats::bytes`] by exactly the
    /// framing overhead — `examples/tcp_smoke.rs` asserts the bound.
    ///
    /// Counted when the frame is staged, not when the socket write
    /// succeeds — deliberately mirroring [`NetStats::bytes`], which
    /// also counts routed-but-undeliverable traffic (e.g. frames bound
    /// for a crashed server's slot; those surface in
    /// [`NetStats::dropped`]). The two counters therefore describe the
    /// same population and their difference is pure framing overhead.
    ///
    /// [`Transport::Channel`]: crate::Transport::Channel
    /// [`Transport::Tcp`]: crate::Transport::Tcp
    pub wire_bytes: u64,
    /// Frames rejected by the receive side (bad magic, version skew,
    /// oversized length prefix, checksum failure, codec garbage). Only
    /// hostile or corrupted connections produce these; each one also
    /// drops its connection.
    pub decode_errors: u64,
    /// Protocol messages dropped because the recipient was unknown or its
    /// inbox closed (e.g. a crashed server).
    pub dropped: u64,
    /// Register logs replayed from disk — once per non-empty per-register
    /// log opened by a (re)starting durable server. Zero unless the store
    /// was built with a durable backend and a server restarted. Rolled up
    /// from the store's [`lucky_log::LogCounters`] at `stats()` time.
    pub recoveries: u64,
    /// Committed payload bytes across every register log the store's
    /// servers have written or replayed. Zero without a durable backend.
    /// Rolled up at `stats()` time, like [`NetStats::recoveries`].
    pub log_bytes: u64,
    /// Socket-setup failures absorbed without killing a worker thread: a
    /// connection (or listener) that could not be made nonblocking and
    /// was dropped, or an epoll registration/wait that failed and made a
    /// reactor degrade. Each one costs at most the affected connection;
    /// the worker and its other sessions keep running.
    pub io_errors: u64,
    /// Times a reactor worker returned from `epoll_wait` (for any
    /// reason: IO readiness, job-submission wake, or timer timeout).
    /// Zero for non-reactor drivers. An *idle* reactor adds nothing
    /// here — the no-busy-wait property `tests/reactor.rs` pins.
    pub reactor_wakeups: u64,
    /// Frame buffers the TCP encode path had to **allocate** because no
    /// recycled buffer was free: the router pops a spent buffer per
    /// outgoing frame and returns it after the socket write, so in
    /// steady state this counter stops growing (at most the in-flight
    /// high-water mark of buffers ever exist). Zero under the channel
    /// transport, which stages no frames.
    pub frame_allocs: u64,
    /// Traffic broken down by the register each protocol message names.
    pub per_register: BTreeMap<RegisterId, RegisterStats>,
    /// Traffic broken down by destination server.
    pub per_server: BTreeMap<ServerId, ServerStats>,
    /// Rollup per server group of a sharded store: empty for a plain
    /// single-group store, filled by `lucky-shard`'s stats aggregation
    /// (which also sums every scalar field above across its groups).
    pub per_group: BTreeMap<lucky_types::GroupId, GroupStats>,
}

/// One line per [`NetStats`] rollup: the headline counters every smoke
/// example used to hand-format its own way. Conditional sections
/// (errors, durability, reactor) appear only when nonzero, so a quiet
/// channel-transport run prints short and an eventful one prints all of
/// it.
impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} wire msgs ({} parts, {:.2} parts/msg), {} payload B",
            self.messages,
            self.parts,
            self.msgs_per_batch(),
            self.bytes
        )?;
        if self.wire_bytes > 0 {
            write!(f, " / {} framed B", self.wire_bytes)?;
        }
        if self.decode_errors + self.dropped + self.io_errors > 0 {
            write!(
                f,
                ", {} decode errs / {} dropped / {} io errs",
                self.decode_errors, self.dropped, self.io_errors
            )?;
        }
        if self.recoveries + self.log_bytes > 0 {
            write!(f, ", {} log replays / {} log B", self.recoveries, self.log_bytes)?;
        }
        if self.reactor_wakeups > 0 {
            write!(f, ", {} epoll wakeups", self.reactor_wakeups)?;
        }
        for (g, per) in &self.per_group {
            write!(
                f,
                "\n  {g}: {} ops, {} wire B, {} replays, luck {:.0}%",
                per.ops,
                per.wire_bytes,
                per.recoveries,
                per.lucky_ratio * 100.0
            )?;
        }
        Ok(())
    }
}

impl NetStats {
    /// The one-line rollup [`NetStats`]'s `Display` renders, as an owned
    /// string — for callers composing it into wider report lines.
    pub fn summary(&self) -> String {
        self.to_string()
    }

    /// The traffic counters for register `reg` (zero if never routed).
    pub fn register(&self, reg: RegisterId) -> RegisterStats {
        self.per_register.get(&reg).copied().unwrap_or_default()
    }

    /// The traffic counters for server `s` (zero if never routed).
    pub fn server(&self, s: ServerId) -> ServerStats {
        self.per_server.get(&s).copied().unwrap_or_default()
    }

    /// The rollup for group `g` of a sharded store (zero for a plain
    /// store, whose per-group map is empty).
    pub fn group(&self, g: lucky_types::GroupId) -> GroupStats {
        self.per_group.get(&g).copied().unwrap_or_default()
    }

    /// Mean parts per wire message (1.0 when batching is disabled).
    pub fn msgs_per_batch(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.parts as f64 / self.messages as f64
        }
    }

    /// Upper bound on the framing overhead [`NetStats::wire_bytes`]
    /// may carry over [`NetStats::bytes`] under
    /// [`Transport::Tcp`](crate::Transport::Tcp), derived from the
    /// `lucky-wire` frame layout rather than hand-tuned constants: per
    /// wire message one frame header plus the packet part-count varint,
    /// per protocol part two encoded process ids plus a batch-envelope
    /// share. The TCP smoke run and transport tests assert
    /// `bytes < wire_bytes <= bytes + max_framing_overhead()`.
    pub fn max_framing_overhead(&self) -> u64 {
        // Per frame: the fixed header + a ≤ 5-byte part-count varint.
        let per_message = lucky_wire::FRAME_HEADER_BYTES as u64 + 5;
        // Per flattened part: two encoded `ProcessId`s (≤ 6 bytes
        // each) and the per-run `Batch` envelope (tag + count varint,
        // ≤ 6 bytes, amortized over the run's ≥ 1 parts).
        let per_part = 18;
        per_message * self.messages + per_part * self.parts
    }
}

/// Where wire traffic can be coalesced: the destination's socket-slot.
/// Servers get one slot each; client processes map to the shard worker
/// that hosts their core (so acks bound for cores on one worker share a
/// wire). Built by the cluster/store builders.
pub(crate) type SlotMap = BTreeMap<ProcessId, usize>;

/// One part of a wire message: sender, recipient, payload.
type Part = (ProcessId, ProcessId, Message);

/// What one in-flight wire message carries: the raw parts (channel
/// transport, materialized per recipient at delivery time) or an
/// already-encoded frame (TCP transport — the bytes are staged at
/// launch, so encode cost and true size are paid and known when the
/// message enters the wire, and delivery is a plain socket write).
enum Load {
    Parts(Vec<Part>),
    Frame {
        /// Destination socket-slot (indexes the router's sink map).
        slot: usize,
        /// The complete encoded frame.
        bytes: Vec<u8>,
        /// Flattened protocol messages inside — the `dropped` count if
        /// the slot's socket is gone (e.g. a crashed server).
        parts: u64,
    },
}

struct InFlight {
    due: Instant,
    seq: u64,
    load: Load,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

/// Messages staged for one destination slot, waiting for co-travellers.
struct SlotBuf {
    parts: Vec<Part>,
    /// Flattened protocol messages across `parts` (an envelope may
    /// itself be a pre-batched ack batch): the `max_msgs` bound is on
    /// this count, not on envelopes.
    part_total: usize,
    oldest: Instant,
}

/// Everything the router needs besides its channels.
pub(crate) struct RouterConfig {
    pub(crate) latency: (Duration, Duration),
    pub(crate) seed: u64,
    pub(crate) batch: BatchConfig,
    pub(crate) slots: SlotMap,
    /// `Some` under [`Transport::Tcp`](crate::Transport::Tcp): the
    /// write half of each destination slot's loopback socket. `None`
    /// delivers through the in-process inboxes.
    pub(crate) sinks: Option<BTreeMap<usize, TcpStream>>,
}

/// Spawn the router thread (shared by `NetCluster` and `NetStore`).
pub(crate) fn spawn_router(
    name: &str,
    rx: Receiver<Envelope>,
    inboxes: BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    cfg: RouterConfig,
    stats: Arc<Mutex<NetStats>>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            Router {
                rx,
                inboxes,
                cfg,
                stats,
                encoder: lucky_wire::PacketEncoder::new(),
                spare_frames: Vec::new(),
            }
            .run()
        })
        .expect("spawn router thread")
}

/// Most spent frame buffers the router keeps for reuse; a delivery
/// burst beyond this frees the excess instead of hoarding it.
const FRAME_POOL_CAP: usize = 64;

struct Router {
    rx: Receiver<Envelope>,
    inboxes: BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    cfg: RouterConfig,
    stats: Arc<Mutex<NetStats>>,
    /// Recycled payload scratch for the TCP encode path.
    encoder: lucky_wire::PacketEncoder,
    /// Spent frame buffers: popped in `launch_one`, returned by
    /// `deliver` after the socket write. Steady state allocates nothing
    /// per frame ([`NetStats::frame_allocs`] stops growing).
    spare_frames: Vec<Vec<u8>>,
}

impl Router {
    /// Run the router loop until a [`Envelope::Stop`] arrives or every
    /// sender disconnects.
    fn run(mut self) {
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        let mut heap: BinaryHeap<InFlight> = BinaryHeap::new();
        let mut staged: BTreeMap<usize, SlotBuf> = BTreeMap::new();
        let mut seq = 0u64;
        let max_delay = Duration::from_micros(self.cfg.batch.max_delay_micros);
        loop {
            // Drain every envelope that is already queued *before*
            // flushing any slot: messages that became ready together
            // coalesce even with max_delay_micros = 0 (a broadcast's
            // envelopes sit in the channel as one burst).
            loop {
                match self.rx.try_recv() {
                    Ok(Envelope::Deliver { from, to, msg }) => {
                        self.accept(from, to, msg, &mut staged, &mut rng, &mut heap, &mut seq);
                    }
                    Ok(Envelope::Sink { slot, stream }) => self.swap_sink(slot, stream),
                    Ok(Envelope::Stop) => return,
                    Err(crossbeam::channel::TryRecvError::Empty) => break,
                    Err(crossbeam::channel::TryRecvError::Disconnected) => return,
                }
            }
            // Deliver everything due.
            let now = Instant::now();
            while heap.peek().is_some_and(|m| m.due <= now) {
                let m = heap.pop().expect("peeked above");
                self.deliver(m.load);
            }
            // Flush every staged slot whose oldest part has waited long
            // enough.
            let due_slots: Vec<usize> = staged
                .iter()
                .filter(|(_, buf)| buf.oldest + max_delay <= now)
                .map(|(&slot, _)| slot)
                .collect();
            for slot in due_slots {
                let buf = staged.remove(&slot).expect("listed above");
                self.launch(buf.parts, &mut rng, &mut heap, &mut seq);
            }
            // Wait for the next envelope, the next due delivery, or the
            // next slot flush deadline — whichever comes first.
            let next_due = heap.peek().map(|m| m.due);
            let next_flush = staged.values().map(|b| b.oldest + max_delay).min();
            let deadline = match (next_due, next_flush) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            match deadline {
                Some(at) => {
                    let timeout = at.saturating_duration_since(Instant::now());
                    match self.rx.recv_timeout(timeout) {
                        Ok(Envelope::Deliver { from, to, msg }) => {
                            self.accept(from, to, msg, &mut staged, &mut rng, &mut heap, &mut seq);
                        }
                        Ok(Envelope::Sink { slot, stream }) => self.swap_sink(slot, stream),
                        Ok(Envelope::Stop) => return,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    }
                }
                None => match self.rx.recv() {
                    Ok(Envelope::Deliver { from, to, msg }) => {
                        self.accept(from, to, msg, &mut staged, &mut rng, &mut heap, &mut seq);
                    }
                    Ok(Envelope::Sink { slot, stream }) => self.swap_sink(slot, stream),
                    Ok(Envelope::Stop) => return,
                    Err(_) => return,
                },
            }
        }
    }

    /// Install (or sever) one slot's socket sink. Frames already in
    /// flight toward the slot land on whatever sink is current when
    /// they come due — a restart therefore loses at most the traffic
    /// the crash itself would have lost. No-op under the channel
    /// transport, which has no sinks to swap.
    fn swap_sink(&mut self, slot: usize, stream: Option<TcpStream>) {
        if let Some(sinks) = self.cfg.sinks.as_mut() {
            match stream {
                Some(s) => {
                    sinks.insert(slot, s);
                }
                None => {
                    sinks.remove(&slot);
                }
            }
        }
    }

    /// Accept one envelope: stage it on its destination slot (batching
    /// enabled and a mapped destination) or put it straight in flight.
    #[allow(clippy::too_many_arguments)]
    fn accept(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msg: Message,
        staged: &mut BTreeMap<usize, SlotBuf>,
        rng: &mut SmallRng,
        heap: &mut BinaryHeap<InFlight>,
        seq: &mut u64,
    ) {
        let slot = self.cfg.slots.get(&to).copied();
        match slot {
            Some(slot) if self.cfg.batch.enabled => {
                let count = msg.part_count();
                // Strict size bound on *flattened* parts (an envelope may
                // itself be a pre-batched ack batch): if joining would
                // push the buffer over max_msgs, ship the buffer first.
                if let Some(buf) = staged.get(&slot) {
                    if buf.part_total + count > self.cfg.batch.max_msgs {
                        let buf = staged.remove(&slot).expect("checked above");
                        self.launch(buf.parts, rng, heap, seq);
                    }
                }
                let buf = staged.entry(slot).or_insert_with(|| SlotBuf {
                    parts: Vec::new(),
                    part_total: 0,
                    oldest: Instant::now(),
                });
                buf.parts.push((from, to, msg));
                buf.part_total += count;
                if buf.part_total >= self.cfg.batch.max_msgs {
                    let buf = staged.remove(&slot).expect("just inserted");
                    self.launch(buf.parts, rng, heap, seq);
                }
            }
            // Batching disabled (or an unmapped destination): every
            // message is its own wire message.
            _ => self.launch(vec![(from, to, msg)], rng, heap, seq),
        }
    }

    /// Put one staged wire message in flight. Channel transport: as a
    /// single wire message. TCP transport: the codec's hard caps bound
    /// what one frame may carry, so the load is first chunked into
    /// cap-respecting frames (one chunk in every honest configuration —
    /// `max_msgs` sits far below the caps); a single protocol message
    /// whose encoding cannot fit any frame at all is dropped and
    /// counted, since no amount of splitting can put it on this wire.
    fn launch(
        &mut self,
        parts: Vec<Part>,
        rng: &mut SmallRng,
        heap: &mut BinaryHeap<InFlight>,
        seq: &mut u64,
    ) {
        debug_assert!(!parts.is_empty());
        if self.cfg.sinks.is_none() {
            self.launch_one(parts, rng, heap, seq);
            return;
        }
        // Conservative per-part frame cost: two encoded process ids
        // (≤ 6 bytes each) plus the exact message payload. Grouping
        // parts into per-run batches at encode time only ever shrinks
        // the real cost below this bound.
        const PART_OVERHEAD: usize = 12;
        // Frame payload budget, with slack for the part-count varint.
        const FRAME_BUDGET: usize = lucky_wire::MAX_FRAME_BYTES - 8;
        let mut chunk: Vec<Part> = Vec::new();
        let (mut chunk_cost, mut chunk_flat) = (0usize, 0usize);
        let mut lost = 0u64;
        for part in parts {
            let flat = part.2.part_count();
            let cost = PART_OVERHEAD + part.2.wire_size();
            if cost > FRAME_BUDGET || flat > lucky_wire::MAX_PARTS {
                // Unframeable however we split: no frame may carry it.
                lost += flat as u64;
                continue;
            }
            if !chunk.is_empty()
                && (chunk_cost + cost > FRAME_BUDGET || chunk_flat + flat > lucky_wire::MAX_PARTS)
            {
                let full = std::mem::take(&mut chunk);
                (chunk_cost, chunk_flat) = (0, 0);
                self.launch_one(full, rng, heap, seq);
            }
            chunk.push(part);
            chunk_cost += cost;
            chunk_flat += flat;
        }
        if lost > 0 {
            self.stats.lock().dropped += lost;
        }
        if !chunk.is_empty() {
            self.launch_one(chunk, rng, heap, seq);
        }
    }

    /// Account one wire message carrying `parts` and put it in flight
    /// with a single sampled delay. Under the TCP transport the frame
    /// is encoded here — staged as the real bytes it will cross the
    /// socket as — and its framed size lands in `wire_bytes`. The
    /// caller guarantees the parts fit one frame's caps.
    fn launch_one(
        &mut self,
        parts: Vec<Part>,
        rng: &mut SmallRng,
        heap: &mut BinaryHeap<InFlight>,
        seq: &mut u64,
    ) {
        debug_assert!(!parts.is_empty());
        let (min, max) = self.cfg.latency;
        let delay = if max > min {
            min + Duration::from_micros(rng.gen_range(0..=(max - min).as_micros() as u64))
        } else {
            min
        };
        // Compute every accounting delta — and, under TCP, the encoded
        // frame — *before* touching the stats mutex, so this hot path
        // pays exactly one acquisition per wire message (the same lock
        // serves the fabric's reader threads and `stats()` pollers).
        //
        // A part may itself be a pre-batched envelope (a server's
        // re-batched acks travel as one `Message::Batch` send):
        // protocol-message accounting always uses the flattened view.
        let total_parts: u64 = parts.iter().map(|(_, _, m)| m.part_count() as u64).sum();
        let part_bytes: u64 = parts.iter().map(|(_, _, m)| m.wire_size() as u64).sum();
        // Coalesced envelopes share one wire frame: one extra header
        // (12 bytes — `lucky_wire::FRAME_HEADER_BYTES`).
        let bytes = if parts.len() > 1 { 12 + part_bytes } else { part_bytes };
        let batched = total_parts > 1;
        // Per-register deltas, in first-seen order.
        let mut per_register: Vec<(RegisterId, u64, u64)> = Vec::new();
        for (_, _, m) in &parts {
            m.for_each_part(|part| {
                let Some(reg) = part.register() else {
                    return;
                };
                let size = part.wire_size() as u64;
                match per_register.iter_mut().find(|(r, _, _)| *r == reg) {
                    Some((_, msgs, b)) => {
                        *msgs += 1;
                        *b += size;
                    }
                    None => per_register.push((reg, 1, size)),
                }
            });
        }
        // Per-server breakdown: server slots hold one server only.
        let server = parts[0]
            .1
            .as_server()
            .filter(|&server| parts.iter().all(|(_, to, _)| to.as_server() == Some(server)));
        let mut fresh_frame = false;
        let load = if self.cfg.sinks.is_none() {
            Some(Load::Parts(parts))
        } else {
            // TCP: stage the wire message as the real frame it will
            // cross the socket as. Every part of one wire message is
            // bound for the same slot (that is what the staging buffer
            // coalesces on), so the first recipient names it. The frame
            // buffer is recycled from a previous delivery when one is
            // free; otherwise it is a counted fresh allocation.
            self.cfg.slots.get(&parts[0].1).copied().map(|slot| {
                let mut bytes = self.spare_frames.pop().unwrap_or_else(|| {
                    fresh_frame = true;
                    Vec::new()
                });
                self.encoder.encode_into(&group_runs(parts), &mut bytes);
                Load::Frame { slot, bytes, parts: total_parts }
            })
        };
        {
            let mut s = self.stats.lock();
            s.messages += 1;
            s.parts += total_parts;
            s.bytes += bytes;
            if batched {
                s.batches_sent += 1;
            }
            for (reg, msgs, reg_bytes) in per_register {
                let per = s.per_register.entry(reg).or_default();
                per.messages += msgs;
                per.bytes += reg_bytes;
                if batched {
                    per.batches_sent += 1;
                }
            }
            if let Some(server) = server {
                let per = s.per_server.entry(server).or_default();
                per.messages += 1;
                per.parts += total_parts;
                per.bytes += bytes;
                if batched {
                    per.batches_sent += 1;
                }
            }
            match &load {
                Some(Load::Frame { bytes, .. }) => s.wire_bytes += bytes.len() as u64,
                Some(Load::Parts(_)) => {}
                // TCP with an unmapped destination: nothing to frame.
                None => s.dropped += total_parts,
            }
            if fresh_frame {
                s.frame_allocs += 1;
            }
        }
        let Some(load) = load else {
            return;
        };
        *seq += 1;
        heap.push(InFlight { due: Instant::now() + delay, seq: *seq, load });
    }

    /// Hand a due wire message to its recipients.
    ///
    /// Channel transport: runs of parts sharing one sender and one
    /// recipient arrive as a single [`Message::Batch`]; sender changes
    /// fan out as separate inbox sends, back-to-back. TCP transport:
    /// the staged frame (whose packet parts were grouped the same way
    /// at launch) is written to the destination slot's socket; the
    /// slot's reader threads decode and fan out on the far side.
    fn deliver(&mut self, load: Load) {
        match load {
            Load::Parts(parts) => {
                for (from, to, msg) in group_runs(parts) {
                    // `dropped` counts protocol messages, so a lost
                    // batch counts each of its parts.
                    let lost = msg.part_count() as u64;
                    match self.inboxes.get(&to) {
                        Some(tx) if tx.send((from, msg)).is_ok() => {}
                        _ => self.stats.lock().dropped += lost,
                    }
                }
            }
            Load::Frame { slot, bytes, parts } => {
                let sink = self.cfg.sinks.as_mut().and_then(|s| s.get_mut(&slot));
                let written = match sink {
                    Some(stream) => stream.write_all(&bytes).is_ok(),
                    // No socket: the slot never spawned (crashed server).
                    None => false,
                };
                if !written {
                    // The wire message is lost, parts and all.
                    self.stats.lock().dropped += parts;
                }
                // Written or lost, the buffer itself is spent: recycle
                // it for the next `launch_one`.
                if self.spare_frames.len() < FRAME_POOL_CAP {
                    self.spare_frames.push(bytes);
                }
            }
        }
    }
}

/// Group consecutive parts sharing one (sender, recipient) pair into
/// single wire-payload messages: a run of length ≥ 2 merges into one
/// [`Message::Batch`], preserving order. Both transports use this — the
/// channel transport at delivery, the TCP transport when staging the
/// frame — so a recipient observes identical messages either way.
fn group_runs(parts: Vec<Part>) -> Vec<PacketPart> {
    let mut out: Vec<PacketPart> = Vec::new();
    let mut run: Vec<Message> = Vec::new();
    let mut run_key: Option<(ProcessId, ProcessId)> = None;
    let flush =
        |key: Option<(ProcessId, ProcessId)>, run: &mut Vec<Message>, out: &mut Vec<PacketPart>| {
            let Some((from, to)) = key else {
                return;
            };
            let msg = if run.len() == 1 {
                run.pop().expect("length checked")
            } else {
                Message::batch(std::mem::take(run))
            };
            run.clear();
            out.push((from, to, msg));
        };
    for (from, to, msg) in parts {
        if run_key != Some((from, to)) {
            flush(run_key, &mut run, &mut out);
            run_key = Some((from, to));
        }
        run.push(msg);
    }
    flush(run_key, &mut run, &mut out);
    out
}
