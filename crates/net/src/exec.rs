//! A minimal std-only executor, enough to drive [`OpFuture`]s.
//!
//! Two entry points:
//!
//! * [`block_on`] — run one future to completion on the calling thread
//!   (park/unpark based);
//! * [`Executor`] — a single-threaded run-queue multiplexing any number
//!   of spawned futures; [`run_all`] is the convenience wrapper that
//!   joins a batch of same-typed futures and returns their outputs.
//!
//! No reactor lives here: wakeups come from the store's worker threads
//! via `NotifyGuard` drops (see the crate-private `future` module), so
//! the executor only needs a run queue. This is deliberate — the *IO*
//! reactor (epoll) runs inside the store's shard workers, and the
//! client-side executor stays a few dozen lines of std.
//!
//! [`OpFuture`]: crate::OpFuture

use std::future::Future;
use std::pin::Pin;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// Wakes a parked [`block_on`] thread.
struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Run one future to completion on the calling thread.
///
/// Parks between polls; any waker clone (from whatever thread) unparks
/// it. Spurious unparks cost one extra poll, nothing more.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => std::thread::park(),
        }
    }
}

/// Wakes an [`Executor`] task: pushes its id back on the run queue.
struct TaskWaker {
    id: usize,
    queue: Sender<usize>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        let _ = self.queue.send(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        let _ = self.queue.send(self.id);
    }
}

/// A single-threaded run-queue executor: spawn any number of futures,
/// then [`Executor::run`] polls each exactly when woken until all
/// complete. Thousands of in-flight store operations multiplex on the
/// one calling thread this way.
pub struct Executor {
    tasks: Vec<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    ready_tx: Sender<usize>,
    ready_rx: Receiver<usize>,
    live: usize,
}

impl Executor {
    /// An empty executor.
    pub fn new() -> Executor {
        let (ready_tx, ready_rx) = channel();
        Executor { tasks: Vec::new(), ready_tx, ready_rx, live: 0 }
    }

    /// Queue `fut` for execution (first polled inside [`Executor::run`]).
    pub fn spawn(&mut self, fut: impl Future<Output = ()> + Send + 'static) {
        let id = self.tasks.len();
        self.tasks.push(Some(Box::pin(fut)));
        self.live += 1;
        let _ = self.ready_tx.send(id);
    }

    /// Drive every spawned future to completion.
    pub fn run(&mut self) {
        while self.live > 0 {
            let id = self.ready_rx.recv().expect("executor holds a sender; never disconnects");
            let Some(task) = self.tasks[id].as_mut() else {
                continue; // spurious wake of a finished task
            };
            let waker = Waker::from(Arc::new(TaskWaker { id, queue: self.ready_tx.clone() }));
            let mut cx = Context::from_waker(&waker);
            if task.as_mut().poll(&mut cx).is_ready() {
                self.tasks[id] = None;
                self.live -= 1;
            }
        }
    }
}

impl Default for Executor {
    fn default() -> Executor {
        Executor::new()
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("tasks", &self.tasks.len())
            .field("live", &self.live)
            .finish_non_exhaustive()
    }
}

/// Run a batch of same-typed futures to completion on the calling
/// thread and return their outputs in input order. The ergonomic way to
/// hold thousands of store operations in flight at once:
///
/// ```ignore
/// let results = run_all((0..5000).map(|i| handles[i].write_async(v(i))).collect());
/// ```
pub fn run_all<F>(futs: Vec<F>) -> Vec<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let n = futs.len();
    let out: Arc<parking_lot::Mutex<Vec<Option<F::Output>>>> =
        Arc::new(parking_lot::Mutex::new((0..n).map(|_| None).collect()));
    let mut exec = Executor::new();
    for (i, fut) in futs.into_iter().enumerate() {
        let out = Arc::clone(&out);
        exec.spawn(async move {
            let result = fut.await;
            out.lock()[i] = Some(result);
        });
    }
    exec.run();
    let results = std::mem::take(&mut *out.lock());
    results.into_iter().map(|r| r.expect("every task stored its output")).collect()
}
