//! The loopback-TCP fabric behind [`Transport::Tcp`].
//!
//! Every destination **socket-slot** — a server, or the shard worker
//! hosting a group of client cores — owns a real `std::net` loopback
//! listener. The router holds the write half: one persistent
//! [`TcpStream`] per slot, into which it writes the frames built by
//! `lucky-wire` ([`encode_packet`](lucky_wire::encode_packet)). Each
//! slot runs an acceptor thread plus one reader thread per connection;
//! readers reassemble frames from partial reads with
//! [`FrameDecoder`](lucky_wire::FrameDecoder), decode the packet parts,
//! and hand `(from, message)` to the destination process's inbox.
//!
//! Trust model: a reader only holds the inbox senders of **its own
//! slot's processes**, so a frame arriving on server 0's socket can
//! never inject into server 1 — the slot boundary is enforced
//! structurally, not by checking. Malformed frames (bad magic, version
//! skew, oversized length prefixes, checksum failures, codec garbage)
//! are counted in [`NetStats::decode_errors`] and the connection is
//! dropped: a corrupted byte stream cannot be resynchronized, so
//! continuing would mean guessing at frame boundaries. Peer
//! *authentication* is out of scope for this loopback transport (the
//! listener trusts whoever connects, which is how the adversarial tests
//! inject hostile bytes); within the workspace the paper's channel
//! model is preserved because every honest frame is written by the
//! router.

use crate::router::{NetStats, SlotMap};
use crossbeam::channel::Sender;
use lucky_types::{Message, ProcessId, ServerId};
use lucky_wire::{decode_packet, FrameDecoder};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How the router moves wire messages to their destination slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Transport {
    /// In-process channels (the original runtime): zero-copy handoff,
    /// no bytes ever exist. `NetStats::bytes` is the codec-exact
    /// payload estimate; `wire_bytes` stays zero.
    #[default]
    Channel,
    /// Real loopback TCP sockets: every wire message is encoded by
    /// `lucky-wire`, framed, written to the destination slot's socket
    /// and reassembled/decoded on the far side. `NetStats::wire_bytes`
    /// reports the true framed byte count.
    Tcp,
}

/// How long a reader blocks in `read` before re-checking the shutdown
/// flag — bounds how long fabric teardown can take.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// One slot's receive side: its listener thread plus the inbox senders
/// of exactly the processes hosted on this slot.
struct SlotReceiver {
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
}

/// The TCP substrate of one cluster/store: per-slot listeners and the
/// router-side write streams.
pub(crate) struct TcpFabric {
    receivers: Vec<SlotReceiver>,
    shutdown: Arc<AtomicBool>,
    /// Listener address of each server's slot, for tests and
    /// adversarial harnesses that talk raw bytes to a server.
    pub(crate) server_addrs: BTreeMap<ServerId, SocketAddr>,
}

impl std::fmt::Debug for TcpFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpFabric").field("slots", &self.receivers.len()).finish_non_exhaustive()
    }
}

/// Build the fabric: one listener + acceptor per destination slot that
/// hosts at least one live process, and one connected router-side
/// stream per slot. Returns the fabric and the router's write streams
/// keyed by slot.
pub(crate) fn build_fabric(
    name: &str,
    slots: &SlotMap,
    inboxes: &BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    stats: &Arc<Mutex<NetStats>>,
) -> (TcpFabric, BTreeMap<usize, TcpStream>) {
    let shutdown = Arc::new(AtomicBool::new(false));
    // Group the live processes (those with an inbox) by slot.
    let mut by_slot: BTreeMap<usize, BTreeMap<ProcessId, Sender<(ProcessId, Message)>>> =
        BTreeMap::new();
    for (pid, tx) in inboxes {
        let slot = *slots.get(pid).expect("every inboxed process has a slot");
        by_slot.entry(slot).or_default().insert(*pid, tx.clone());
    }
    let mut receivers = Vec::new();
    let mut sinks = BTreeMap::new();
    let mut server_addrs = BTreeMap::new();
    for (slot, slot_inboxes) in by_slot {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
        let addr = listener.local_addr().expect("listener has an address");
        for pid in slot_inboxes.keys() {
            if let Some(s) = pid.as_server() {
                server_addrs.insert(s, addr);
            }
        }
        let acceptor = spawn_acceptor(
            format!("{name}-slot-{slot}"),
            listener,
            slot_inboxes,
            Arc::clone(stats),
            Arc::clone(&shutdown),
        );
        let sink = TcpStream::connect(addr).expect("connect router sink");
        sink.set_nodelay(true).expect("set TCP_NODELAY");
        sinks.insert(slot, sink);
        receivers.push(SlotReceiver { addr, acceptor });
    }
    (TcpFabric { receivers, shutdown, server_addrs }, sinks)
}

impl TcpFabric {
    /// Stop accepting, wake the blocked acceptors, and join every
    /// receive-side thread. Call after the router thread (which owns
    /// the write streams) has exited, so readers see EOF.
    pub(crate) fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for r in &self.receivers {
            // Wake the acceptor out of its blocking accept.
            let _ = TcpStream::connect(r.addr);
        }
        for r in self.receivers.drain(..) {
            let _ = r.acceptor.join();
        }
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        // Non-blocking teardown path (cluster dropped without an
        // explicit shutdown): raise the flag and wake the acceptors so
        // they release their inbox senders; don't join.
        self.shutdown.store(true, Ordering::SeqCst);
        for r in &self.receivers {
            let _ = TcpStream::connect(r.addr);
        }
    }
}

/// Accept connections for one slot until shutdown; each connection gets
/// its own frame-reader thread. Reader handles are joined before the
/// acceptor exits so the slot's inbox senders drop deterministically.
fn spawn_acceptor(
    name: String,
    listener: TcpListener,
    inboxes: BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    stats: Arc<Mutex<NetStats>>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(move || {
            let mut readers = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let inboxes = inboxes.clone();
                let stats = Arc::clone(&stats);
                let shutdown = Arc::clone(&shutdown);
                readers.push(
                    std::thread::Builder::new()
                        .name(format!("{name}-rx"))
                        .spawn(move || read_frames(stream, inboxes, stats, shutdown))
                        .expect("spawn frame reader"),
                );
            }
            for r in readers {
                let _ = r.join();
            }
        })
        .expect("spawn slot acceptor")
}

/// Drain one connection: reassemble frames from whatever partial reads
/// the socket produces, decode each packet, and deliver its parts to
/// this slot's inboxes. Exits on EOF, on shutdown, or on the first
/// malformed frame (counted, connection dropped — a corrupt stream has
/// no trustworthy framing left).
fn read_frames(
    mut stream: TcpStream,
    inboxes: BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    stats: Arc<Mutex<NetStats>>,
    shutdown: Arc<AtomicBool>,
) {
    stream.set_read_timeout(Some(READ_TIMEOUT)).expect("set read timeout");
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: loop {
        match stream.read(&mut buf) {
            Ok(0) => break, // EOF: peer closed
            Ok(n) => {
                dec.feed(&buf[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some(payload)) => match decode_packet(&payload) {
                            Ok(parts) => deliver(&parts, &inboxes, &stats),
                            Err(_) => {
                                stats.lock().decode_errors += 1;
                                break 'conn;
                            }
                        },
                        Ok(None) => break,
                        Err(_) => {
                            stats.lock().decode_errors += 1;
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Hand decoded parts to their processes. A part addressed to a process
/// this slot does not host (only hostile frames can produce one — the
/// router partitions by slot) or whose inbox has closed counts as
/// dropped, exactly like the channel transport's accounting.
fn deliver(
    parts: &[(ProcessId, ProcessId, Message)],
    inboxes: &BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    stats: &Arc<Mutex<NetStats>>,
) {
    for (from, to, msg) in parts {
        let lost = msg.part_count() as u64;
        match inboxes.get(to) {
            Some(tx) if tx.send((*from, msg.clone())).is_ok() => {}
            _ => stats.lock().dropped += lost,
        }
    }
}
