//! The loopback-TCP fabric behind [`Transport::Tcp`].
//!
//! Every destination **socket-slot** — a server, or the shard worker
//! hosting a group of client cores — owns a real `std::net` loopback
//! listener. The router holds the write half: one persistent
//! [`TcpStream`] per slot, into which it writes the frames built by
//! `lucky-wire` ([`encode_packet`](lucky_wire::encode_packet)). Each
//! slot runs an acceptor thread plus one reader thread per connection;
//! readers reassemble frames from partial reads with
//! [`FrameDecoder`](lucky_wire::FrameDecoder), decode the packet parts,
//! and hand `(from, message)` to the destination process's inbox.
//!
//! Trust model: a reader only holds the inbox senders of **its own
//! slot's processes**, so a frame arriving on server 0's socket can
//! never inject into server 1 — the slot boundary is enforced
//! structurally, not by checking. Malformed frames (bad magic, version
//! skew, oversized length prefixes, checksum failures, codec garbage)
//! are counted in [`NetStats::decode_errors`] and the connection is
//! dropped: a corrupted byte stream cannot be resynchronized, so
//! continuing would mean guessing at frame boundaries. Peer
//! *authentication* is out of scope for this loopback transport (the
//! listener trusts whoever connects, which is how the adversarial tests
//! inject hostile bytes); within the workspace the paper's channel
//! model is preserved because every honest frame is written by the
//! router.

use crate::router::{NetStats, SlotMap};
use crossbeam::channel::Sender;
use lucky_types::{Message, ProcessId, ServerId};
use lucky_wire::{decode_packet, FrameDecoder};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How the router moves wire messages to their destination slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Transport {
    /// In-process channels (the original runtime): zero-copy handoff,
    /// no bytes ever exist. `NetStats::bytes` is the codec-exact
    /// payload estimate; `wire_bytes` stays zero.
    #[default]
    Channel,
    /// Real loopback TCP sockets: every wire message is encoded by
    /// `lucky-wire`, framed, written to the destination slot's socket
    /// and reassembled/decoded on the far side. `NetStats::wire_bytes`
    /// reports the true framed byte count.
    Tcp,
}

/// How long a reader blocks in `read` before re-checking the shutdown
/// flag — bounds how long fabric teardown can take.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// One slot's receive side: its listener thread plus the inbox senders
/// of exactly the processes hosted on this slot.
struct SlotReceiver {
    slot: usize,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    /// This slot's own teardown flag: fabric shutdown raises every
    /// slot's, [`TcpFabric::rebind_slot`] raises just one — a server
    /// restart must not stop its peers' acceptors.
    down: Arc<AtomicBool>,
    /// The inbox senders this slot's readers fan out to, kept so a
    /// re-bind can rebuild the receive side for the same processes.
    inboxes: BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
}

/// The TCP substrate of one cluster/store: per-slot listeners and the
/// router-side write streams.
pub(crate) struct TcpFabric {
    name: String,
    stats: Arc<Mutex<NetStats>>,
    receivers: Vec<SlotReceiver>,
    /// Listener address of each server's slot, for tests and
    /// adversarial harnesses that talk raw bytes to a server.
    pub(crate) server_addrs: BTreeMap<ServerId, SocketAddr>,
}

impl std::fmt::Debug for TcpFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpFabric").field("slots", &self.receivers.len()).finish_non_exhaustive()
    }
}

/// Build the fabric: one listener + acceptor per destination slot that
/// hosts at least one live process, and one connected router-side
/// stream per slot. Returns the fabric and the router's write streams
/// keyed by slot.
pub(crate) fn build_fabric(
    name: &str,
    slots: &SlotMap,
    inboxes: &BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    stats: &Arc<Mutex<NetStats>>,
) -> (TcpFabric, BTreeMap<usize, TcpStream>) {
    // Group the live processes (those with an inbox) by slot.
    let mut by_slot: BTreeMap<usize, BTreeMap<ProcessId, Sender<(ProcessId, Message)>>> =
        BTreeMap::new();
    for (pid, tx) in inboxes {
        let slot = *slots.get(pid).expect("every inboxed process has a slot");
        by_slot.entry(slot).or_default().insert(*pid, tx.clone());
    }
    let mut receivers = Vec::new();
    let mut sinks = BTreeMap::new();
    let mut server_addrs = BTreeMap::new();
    for (slot, slot_inboxes) in by_slot {
        let (receiver, sink) = bind_slot(name, slot, slot_inboxes, stats);
        for pid in receiver.inboxes.keys() {
            if let Some(s) = pid.as_server() {
                server_addrs.insert(s, receiver.addr);
            }
        }
        sinks.insert(slot, sink);
        receivers.push(receiver);
    }
    let fabric = TcpFabric { name: name.into(), stats: Arc::clone(stats), receivers, server_addrs };
    (fabric, sinks)
}

/// Bind one slot's receive side — a fresh ephemeral-port listener, its
/// acceptor thread, its own teardown flag — and connect the router-side
/// write stream. Used at build time and again on every slot re-bind.
fn bind_slot(
    name: &str,
    slot: usize,
    inboxes: BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    stats: &Arc<Mutex<NetStats>>,
) -> (SlotReceiver, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
    let addr = listener.local_addr().expect("listener has an address");
    let down = Arc::new(AtomicBool::new(false));
    let acceptor = spawn_acceptor(
        format!("{name}-slot-{slot}"),
        listener,
        inboxes.clone(),
        Arc::clone(stats),
        Arc::clone(&down),
    );
    let sink = TcpStream::connect(addr).expect("connect router sink");
    sink.set_nodelay(true).expect("set TCP_NODELAY");
    (SlotReceiver { slot, addr, acceptor, down, inboxes }, sink)
}

impl TcpFabric {
    /// Stop accepting, wake the blocked acceptors, and join every
    /// receive-side thread. Call after the router thread (which owns
    /// the write streams) has exited, so readers see EOF.
    pub(crate) fn shutdown(&mut self) {
        for r in &self.receivers {
            r.down.store(true, Ordering::SeqCst);
            // Wake the acceptor out of its blocking accept.
            let _ = TcpStream::connect(r.addr);
        }
        for r in self.receivers.drain(..) {
            let _ = r.acceptor.join();
        }
    }

    /// Re-bind one slot's receive side — the TCP half of a server
    /// restart. The old listener, acceptor and reader threads are torn
    /// down and joined, then the slot comes back on a **fresh ephemeral
    /// port** with a freshly connected router sink: a restarted server
    /// resumes at a new address, exactly as a restarted process would.
    /// Returns the new sink for the router to install (via
    /// `Envelope::Sink`), or `None` for a slot this fabric never bound
    /// (e.g. a server started crashed). `server_addrs` is updated for
    /// the slot's server so `server_addr()` keeps answering truthfully.
    pub(crate) fn rebind_slot(&mut self, slot: usize) -> Option<TcpStream> {
        let idx = self.receivers.iter().position(|r| r.slot == slot)?;
        let old = self.receivers.swap_remove(idx);
        old.down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(old.addr); // wake the blocking accept
        let _ = old.acceptor.join();
        let (receiver, sink) = bind_slot(&self.name, slot, old.inboxes, &self.stats);
        for pid in receiver.inboxes.keys() {
            if let Some(s) = pid.as_server() {
                self.server_addrs.insert(s, receiver.addr);
            }
        }
        self.receivers.push(receiver);
        Some(sink)
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        // Non-blocking teardown path (cluster dropped without an
        // explicit shutdown): raise the flags and wake the acceptors so
        // they release their inbox senders; don't join.
        for r in &self.receivers {
            r.down.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(r.addr);
        }
    }
}

/// Accept connections for one slot until shutdown; each connection gets
/// its own frame-reader thread. Reader handles are joined before the
/// acceptor exits so the slot's inbox senders drop deterministically.
fn spawn_acceptor(
    name: String,
    listener: TcpListener,
    inboxes: BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    stats: Arc<Mutex<NetStats>>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(move || {
            let mut readers = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let inboxes = inboxes.clone();
                let stats = Arc::clone(&stats);
                let shutdown = Arc::clone(&shutdown);
                readers.push(
                    std::thread::Builder::new()
                        .name(format!("{name}-rx"))
                        .spawn(move || read_frames(stream, inboxes, stats, shutdown))
                        .expect("spawn frame reader"),
                );
            }
            for r in readers {
                let _ = r.join();
            }
        })
        .expect("spawn slot acceptor")
}

/// Drain one connection: reassemble frames from whatever partial reads
/// the socket produces, decode each packet, and deliver its parts to
/// this slot's inboxes. Exits on EOF, on shutdown, or on the first
/// malformed frame (counted, connection dropped — a corrupt stream has
/// no trustworthy framing left).
fn read_frames(
    mut stream: TcpStream,
    inboxes: BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    stats: Arc<Mutex<NetStats>>,
    shutdown: Arc<AtomicBool>,
) {
    stream.set_read_timeout(Some(READ_TIMEOUT)).expect("set read timeout");
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: loop {
        match stream.read(&mut buf) {
            Ok(0) => break, // EOF: peer closed
            Ok(n) => {
                dec.feed(&buf[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some(payload)) => match decode_packet(&payload) {
                            Ok(parts) => deliver(&parts, &inboxes, &stats),
                            Err(_) => {
                                stats.lock().decode_errors += 1;
                                break 'conn;
                            }
                        },
                        Ok(None) => break,
                        Err(_) => {
                            stats.lock().decode_errors += 1;
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Hand decoded parts to their processes. A part addressed to a process
/// this slot does not host (only hostile frames can produce one — the
/// router partitions by slot) or whose inbox has closed counts as
/// dropped, exactly like the channel transport's accounting.
fn deliver(
    parts: &[(ProcessId, ProcessId, Message)],
    inboxes: &BTreeMap<ProcessId, Sender<(ProcessId, Message)>>,
    stats: &Arc<Mutex<NetStats>>,
) {
    for (from, to, msg) in parts {
        let lost = msg.part_count() as u64;
        match inboxes.get(to) {
            Some(tx) if tx.send((*from, msg.clone())).is_ok() => {}
            _ => stats.lock().dropped += lost,
        }
    }
}
