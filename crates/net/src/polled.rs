//! The nonblocking, readiness-style polled driver.
//!
//! Where the threaded driver parks one OS thread per in-flight operation
//! (`ClientDriver::run_op` blocks its caller), the polled driver
//! multiplexes **all of a shard's client sessions on one thread**: a
//! single loop drains the job queue, polls the shard's input source,
//! wakes whichever sessions are due and pumps their outputs to the
//! router. The sans-io `ClientSession` already isolates all protocol and
//! deadline logic, so the same worker runs under two readiness sources:
//!
//! * [`Driver::Polled`] — this module's sleep-capped poll loop: portable
//!   (no OS reactor), at the cost of scheduling noise up to
//!   [`POLL_TICK`] per input;
//! * [`Driver::Reactor`] — `crate::reactor` drives the *same*
//!   [`PolledWorker`] state machine from a real `epoll` instance: the
//!   thread blocks in `epoll_wait` with the session timers folded into
//!   the timeout and wakes only for actual IO, timers or job
//!   submissions.
//!
//! Input sources per [`Transport`](crate::Transport):
//!
//! * **Channel** — the worker owns its client processes' inboxes and
//!   `try_recv`s them;
//! * **Tcp** — the worker owns its slot's loopback listener *itself*
//!   (the fabric spawns no reader threads for polled slots): it accepts
//!   the router's connection nonblocking, reads whatever bytes arrived,
//!   reassembles frames with [`FrameDecoder`], decodes the packet parts
//!   and dispatches them to sessions by recipient. One thread, zero
//!   blocking reads — the push-based decoder from `lucky-wire` is what
//!   makes this loop possible.
//!
//! Socket setup failures degrade instead of killing the worker: a
//! connection that cannot be flipped nonblocking is dropped (counted in
//! [`NetStats::io_errors`]), a listener that cannot be is abandoned —
//! the shard's sessions then fail per-operation (deadline) rather than
//! stranding every session the worker multiplexes.

use crate::cluster::{trace_actor, NetError, NetOutcome};
use crate::future::NotifyGuard;
use crate::router::{Envelope, NetStats};
use crossbeam::channel::{Receiver, Sender};
use lucky_core::runtime::{ClientSession, Input};
use lucky_types::{History, Message, Op, OpId, OpRecord, ProcessId, RegisterId, Time};
use lucky_wire::{decode_packet, FrameDecoder};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which client-driving strategy a `NetStore` deploys on its shard
/// workers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Driver {
    /// One blocking driver per job: a shard worker runs its queued
    /// operations to completion one at a time (the original runtime).
    #[default]
    Threaded,
    /// One nonblocking poll loop per shard worker, multiplexing all of
    /// the shard's client sessions: operations on different sessions of
    /// one worker proceed concurrently.
    Polled,
    /// One `epoll` reactor per shard worker: the same multiplexing as
    /// [`Driver::Polled`], but the thread blocks in `epoll_wait` (wake
    /// eventfd + listener + accepted connections registered, session
    /// timers folded into the timeout) instead of sleep-capped polling
    /// — so one thread drives thousands of concurrent sessions and an
    /// idle worker costs zero CPU. Requires
    /// [`Transport::Tcp`](crate::Transport::Tcp); on platforms without
    /// epoll the worker transparently falls back to the polled loop.
    Reactor,
}

/// A job submitted to a shard worker (threaded or polled): run `op`
/// on the client core/session keyed by `slot` and send the outcome back
/// through `reply`. `notify` wakes the op's future (if the job came from
/// the futures API) once the reply has been sent — or on any path that
/// drops the job, so a future can never be lost.
pub(crate) struct Job {
    pub(crate) slot: (RegisterId, u32),
    pub(crate) op: Op,
    pub(crate) reply: Sender<Result<NetOutcome, NetError>>,
    pub(crate) notify: Option<NotifyGuard>,
}

/// The operation currently in flight on one session, with its per-op
/// traffic attribution (wire messages sent/received and their
/// codec-exact bytes while the op was pending — the same accounting the
/// sim world's `apply_effects`/`account_delivery` perform).
struct Current {
    op: Op,
    reply: Sender<Result<NetOutcome, NetError>>,
    notify: Option<NotifyGuard>,
    start: Instant,
    invoked_at: Time,
    msgs: u64,
    bytes: u64,
}

/// A queued operation: what to run, where the outcome goes, and the
/// optional future wakeup to fire once the reply is observable.
type QueuedOp = (Op, Sender<Result<NetOutcome, NetError>>, Option<NotifyGuard>);

/// One session plus its queued work.
pub(crate) struct PolledSlot {
    pub(crate) session: ClientSession,
    queue: VecDeque<QueuedOp>,
    current: Option<Current>,
}

impl PolledSlot {
    pub(crate) fn new(session: ClientSession) -> PolledSlot {
        PolledSlot { session, queue: VecDeque::new(), current: None }
    }

    fn is_idle(&self) -> bool {
        self.current.is_none() && self.queue.is_empty()
    }

    /// Credit one delivered wire message to the pending op (if any).
    fn credit_delivery(&mut self, msg: &Message) {
        if let Some(cur) = self.current.as_mut() {
            cur.msgs += 1;
            cur.bytes += msg.wire_size() as u64;
        }
    }
}

/// Where a polled worker's inbound protocol messages come from.
pub(crate) enum PollIo {
    /// Channel transport: the per-process inboxes this worker hosts.
    Channel(BTreeMap<ProcessId, Receiver<(ProcessId, Message)>>),
    /// TCP transport: the worker's own loopback listener (nonblocking;
    /// `None` if it could not be made so — the worker then runs without
    /// accepting, degraded but alive), plus a slab of the connections
    /// accepted so far with their frame decoders. Slab indices are
    /// stable (closed connections leave a `None` hole) so the reactor's
    /// epoll tokens stay valid across closes.
    Tcp { listener: Option<TcpListener>, conns: Vec<Option<(TcpStream, FrameDecoder)>> },
}

impl PollIo {
    /// A nonblocking TCP source. The listener must already be bound;
    /// this flips it nonblocking. If the OS refuses, the listener is
    /// **abandoned** (counted in [`NetStats::io_errors`]) rather than
    /// kept blocking — a blocking `accept` would wedge the whole shard
    /// worker, whereas a worker without a listener merely lets its
    /// sessions fail per-operation.
    pub(crate) fn tcp(
        listener: TcpListener,
        stats: &Arc<Mutex<NetStats>>,
        tracer: &lucky_trace::Tracer,
    ) -> PollIo {
        let listener = match listener.set_nonblocking(true) {
            Ok(()) => Some(listener),
            Err(_) => {
                stats.lock().io_errors += 1;
                tracer.note_io_error(0, "worker listener cannot be made nonblocking; abandoned");
                discard_broken(listener);
                None
            }
        };
        PollIo::Tcp { listener, conns: Vec::new() }
    }
}

/// Upper bound on one poll-loop sleep: inputs (jobs, bytes) that arrive
/// while the worker sleeps are picked up at worst this much later.
const POLL_TICK: Duration = Duration::from_micros(500);

/// How long an *idle* worker (no session pending, no job queued) parks
/// on the job queue before re-checking for shutdown.
const IDLE_PARK: Duration = Duration::from_millis(20);

pub(crate) struct PolledWorker {
    pub(crate) sessions: BTreeMap<(RegisterId, u32), PolledSlot>,
    /// Recipient → session key, for dispatching inbound messages.
    pub(crate) by_pid: BTreeMap<ProcessId, (RegisterId, u32)>,
    pub(crate) jobs: Receiver<Job>,
    pub(crate) router: Sender<Envelope>,
    pub(crate) io: PollIo,
    pub(crate) history: Arc<Mutex<History>>,
    pub(crate) stats: Arc<Mutex<NetStats>>,
    pub(crate) epoch: Instant,
    pub(crate) tracer: Arc<lucky_trace::Tracer>,
}

impl PolledWorker {
    /// Session time: microseconds since the store's epoch (shared by
    /// every worker so history timestamps interleave correctly).
    pub(crate) fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_micros() as u64)
    }

    /// Run the poll loop until the store drops the job senders and every
    /// session has drained its work. Also the portable fallback the
    /// reactor driver degrades to when no epoll instance can be had.
    pub(crate) fn run(mut self) {
        let mut jobs_open = true;
        loop {
            // 1. Drain newly submitted jobs into their session queues.
            self.drain_jobs(&mut jobs_open);
            // 2. Poll the input source and feed deliveries to sessions.
            self.poll_io();
            // 3. Wake every session whose next_wake is due.
            self.fire_due_wakes();
            // 4. Start queued operations, pump outputs, settle outcomes.
            self.advance();
            // 5. Exit once no more jobs can arrive and nothing is left.
            if !jobs_open && self.all_idle() {
                return;
            }
            // 6. Sleep until the next wake (capped) — or, fully idle,
            //    park on the job queue so an idle store costs no CPU.
            if !self.all_idle() {
                let next = self.next_wake_delay().unwrap_or(POLL_TICK);
                std::thread::sleep(next.min(POLL_TICK));
            } else if jobs_open {
                match self.jobs.recv_timeout(IDLE_PARK) {
                    Ok(job) => self.enqueue(job),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => jobs_open = false,
                }
            }
        }
    }

    /// Move every queued job into its session's queue; clears
    /// `jobs_open` once the store has dropped the job senders.
    pub(crate) fn drain_jobs(&mut self, jobs_open: &mut bool) {
        while *jobs_open {
            match self.jobs.try_recv() {
                Ok(job) => self.enqueue(job),
                Err(crossbeam::channel::TryRecvError::Empty) => break,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    *jobs_open = false;
                    break;
                }
            }
        }
    }

    /// Wake every session whose `next_wake` is due.
    pub(crate) fn fire_due_wakes(&mut self) {
        let now = self.now();
        for slot in self.sessions.values_mut() {
            if slot.session.next_wake().is_some_and(|due| due <= now) {
                slot.session.handle(Input::Wake, now);
            }
        }
    }

    /// `true` iff no session has an op in flight or queued.
    pub(crate) fn all_idle(&self) -> bool {
        self.sessions.values().all(PolledSlot::is_idle)
    }

    /// How long until the earliest session timer is due (`None` when no
    /// session needs waking — e.g. fully idle). The reactor uses this as
    /// its `epoll_wait` timeout; the polled loop caps it at
    /// [`POLL_TICK`].
    pub(crate) fn next_wake_delay(&self) -> Option<Duration> {
        let now = self.now();
        self.sessions
            .values()
            .filter_map(|s| s.session.next_wake())
            .min()
            .map(|due| Duration::from_micros(due.0.saturating_sub(now.0)))
    }

    fn enqueue(&mut self, job: Job) {
        // An unknown slot cannot happen (handle construction prevents
        // it); if it did, dropping the reply sender surfaces as a
        // disconnect to the caller (and the dropped notify guard wakes
        // the op's future, if any).
        if let Some(slot) = self.sessions.get_mut(&job.slot) {
            slot.queue.push_back((job.op, job.reply, job.notify));
        }
    }

    /// Drain whatever input arrived without blocking.
    pub(crate) fn poll_io(&mut self) {
        match &mut self.io {
            PollIo::Channel(_) => self.poll_channels(),
            PollIo::Tcp { .. } => {
                self.accept_new();
                let PollIo::Tcp { conns, .. } = &self.io else { unreachable!() };
                let live: Vec<usize> =
                    conns.iter().enumerate().filter_map(|(i, c)| c.as_ref().map(|_| i)).collect();
                for i in live {
                    self.read_conn(i);
                }
            }
        }
    }

    /// Drain the channel-transport inboxes.
    fn poll_channels(&mut self) {
        let now = self.now();
        let PollIo::Channel(inboxes) = &mut self.io else { return };
        for (pid, rx) in inboxes.iter() {
            let Some(&key) = self.by_pid.get(pid) else { continue };
            while let Ok((from, msg)) = rx.try_recv() {
                if let Some(slot) = self.sessions.get_mut(&key) {
                    slot.credit_delivery(&msg);
                    slot.session.handle(Input::Deliver(from, msg), now);
                }
            }
        }
    }

    /// Accept every connection the router has established (TCP only),
    /// returning the slab indices of the new connections so a reactor
    /// can register them. A connection that cannot be made nonblocking
    /// is dropped and counted — one bad socket must not kill the worker.
    pub(crate) fn accept_new(&mut self) -> Vec<usize> {
        let mut added = Vec::new();
        let PollIo::Tcp { listener, conns } = &mut self.io else { return added };
        let Some(listener) = listener.as_ref() else { return added };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        self.stats.lock().io_errors += 1;
                        self.tracer.note_io_error(
                            self.epoch.elapsed().as_micros() as u64,
                            "accepted connection cannot be made nonblocking; dropped",
                        );
                        discard_broken(stream);
                        continue;
                    }
                    let i = match conns.iter().position(Option::is_none) {
                        Some(hole) => hole,
                        None => {
                            conns.push(None);
                            conns.len() - 1
                        }
                    };
                    conns[i] = Some((stream, FrameDecoder::new()));
                    added.push(i);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        added
    }

    /// The worker's loopback listener, for epoll registration (`None`
    /// for channel transport or a degraded TCP source).
    pub(crate) fn listener(&self) -> Option<&TcpListener> {
        match &self.io {
            PollIo::Tcp { listener, .. } => listener.as_ref(),
            PollIo::Channel(_) => None,
        }
    }

    /// The accepted connection at slab index `i`, for epoll registration.
    pub(crate) fn conn_stream(&self, i: usize) -> Option<&TcpStream> {
        match &self.io {
            PollIo::Tcp { conns, .. } => conns.get(i).and_then(|c| c.as_ref()).map(|(s, _)| s),
            PollIo::Channel(_) => None,
        }
    }

    /// Drop the accepted connection at slab index `i` (its hole is
    /// reused by later accepts).
    pub(crate) fn drop_conn(&mut self, i: usize) {
        if let PollIo::Tcp { conns, .. } = &mut self.io {
            if let Some(c) = conns.get_mut(i) {
                *c = None;
            }
        }
    }

    /// Read connection `i` dry: reassemble frames, decode, dispatch to
    /// sessions. Closes the connection on EOF, IO error or the first
    /// malformed frame (counted — a corrupt stream has no trustworthy
    /// framing left).
    pub(crate) fn read_conn(&mut self, i: usize) {
        let now = self.now();
        let PollIo::Tcp { conns, .. } = &mut self.io else { return };
        let Some(Some((stream, dec))) = conns.get_mut(i) else { return };
        let mut buf = [0u8; 16 * 1024];
        let mut close = false;
        'conn: loop {
            match stream.read(&mut buf) {
                Ok(0) => {
                    close = true;
                    break;
                }
                Ok(n) => {
                    dec.feed(&buf[..n]);
                    loop {
                        match dec.next_frame() {
                            Ok(Some(payload)) => match decode_packet(&payload) {
                                Ok(parts) => dispatch(
                                    &parts,
                                    &self.by_pid,
                                    &mut self.sessions,
                                    &self.stats,
                                    now,
                                ),
                                Err(_) => {
                                    self.stats.lock().decode_errors += 1;
                                    close = true;
                                    break 'conn;
                                }
                            },
                            Ok(None) => break,
                            Err(_) => {
                                self.stats.lock().decode_errors += 1;
                                close = true;
                                break 'conn;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    close = true;
                    break;
                }
            }
        }
        if close {
            conns[i] = None;
        }
    }

    /// Begin queued operations on idle sessions, forward outputs to the
    /// router, and resolve completed or failed operations.
    pub(crate) fn advance(&mut self) {
        let now = self.now();
        for slot in self.sessions.values_mut() {
            // Start the next queued op when the session is free.
            if slot.current.is_none() && slot.session.is_ready() {
                if let Some((op, reply, notify)) = slot.queue.pop_front() {
                    slot.session
                        .begin(op.clone(), now)
                        .expect("is_ready checked; sessions run one op at a time");
                    slot.current = Some(Current {
                        op,
                        reply,
                        notify,
                        start: Instant::now(),
                        invoked_at: now,
                        msgs: 0,
                        bytes: 0,
                    });
                }
            }
            // Pump outputs, attributing each send to the pending op.
            let from = slot.session.id();
            while let Some(out) = slot.session.poll_output() {
                let (to, msg) = out.into_send();
                if let Some(cur) = slot.current.as_mut() {
                    cur.msgs += 1;
                    cur.bytes += msg.wire_size() as u64;
                }
                let _ = self.router.send(Envelope::Deliver { from, to, msg });
            }
            // Settle.
            if !slot.session.is_settled() {
                continue;
            }
            if let Some(outcome) = slot.session.take_outcome() {
                let Some(cur) = slot.current.take() else { continue };
                let net = NetOutcome::from_session(outcome, &cur.op, cur.start.elapsed());
                self.tracer.record_settle(
                    trace_actor(slot.session.id(), slot.session.reg()),
                    matches!(cur.op, Op::Write(_)),
                    net.rounds,
                    net.fast,
                    cur.start.elapsed().as_micros() as u64,
                    slot.session.span(),
                );
                append_history(
                    &self.history,
                    slot.session.reg(),
                    slot.session.id(),
                    cur.op,
                    cur.invoked_at,
                    Some((now, &net)),
                    (cur.msgs, cur.bytes),
                );
                let _ = cur.reply.send(Ok(net));
                // Wake the op's future (if any) only now, *after* the
                // reply is observable in the channel.
                drop(cur.notify);
            } else if let Some(err) = slot.session.take_failure() {
                let Some(cur) = slot.current.take() else { continue };
                let err: NetError = err.into();
                self.tracer.record_failure(
                    trace_actor(slot.session.id(), slot.session.reg()),
                    matches!(cur.op, Op::Write(_)),
                    err.fail_reason(),
                    slot.session.span(),
                );
                append_history(
                    &self.history,
                    slot.session.reg(),
                    slot.session.id(),
                    cur.op,
                    cur.invoked_at,
                    None,
                    (cur.msgs, cur.bytes),
                );
                let _ = cur.reply.send(Err(err));
                drop(cur.notify);
            }
        }
    }
}

/// Dispose of a socket whose `set_nonblocking` failed. The practical
/// failure is `EBADF` — the descriptor is already dead (closed out from
/// under us) — and `OwnedFd`'s drop *aborts the process* on a
/// double-close. So instead of dropping, close through the raw,
/// EBADF-tolerant helper and forget the handle: a live descriptor is
/// closed exactly once, a dead one is left alone, and the worker
/// survives either way.
fn discard_broken(socket: impl std::os::fd::AsRawFd) {
    epoll::close_fd(socket.as_raw_fd());
    std::mem::forget(socket);
}

/// Hand decoded packet parts to their sessions. Parts addressed to a
/// process this worker does not host (only hostile frames produce one)
/// count as dropped, mirroring the fabric's accounting.
fn dispatch(
    parts: &[(ProcessId, ProcessId, Message)],
    by_pid: &BTreeMap<ProcessId, (RegisterId, u32)>,
    sessions: &mut BTreeMap<(RegisterId, u32), PolledSlot>,
    stats: &Arc<Mutex<NetStats>>,
    now: Time,
) {
    for (from, to, msg) in parts {
        match by_pid.get(to).and_then(|key| sessions.get_mut(key)) {
            Some(slot) => {
                slot.credit_delivery(msg);
                slot.session.handle(Input::Deliver(*from, msg.clone()), now);
            }
            None => stats.lock().dropped += msg.part_count() as u64,
        }
    }
}

/// Append one finished (or abandoned) operation to the shared history —
/// the single recording path for all shard-worker kinds. `completion`
/// is `None` for a failed operation (it stays an incomplete record, so
/// the checkers treat it as pending, never as a bogus completion).
/// `traffic` is the op's `(msgs, bytes)` attribution, counted by the
/// driver while the op was pending — the same population the sim world
/// records, so sim-vs-net comparisons read real numbers.
pub(crate) fn append_history(
    history: &Arc<Mutex<History>>,
    reg: RegisterId,
    client: ProcessId,
    op: Op,
    invoked_at: Time,
    completion: Option<(Time, &NetOutcome)>,
    traffic: (u64, u64),
) {
    let mut h = history.lock();
    let id = OpId(h.ops.len() as u64);
    let (completed_at, result, rounds, fast) = match completion {
        Some((at, net)) => (
            Some(at),
            match op {
                Op::Read => Some(net.value.clone()),
                Op::Write(_) => None,
            },
            net.rounds,
            net.fast,
        ),
        None => (None, None, 0, false),
    };
    h.ops.push(OpRecord {
        id,
        reg,
        client,
        op,
        invoked_at,
        completed_at,
        result,
        rounds,
        fast,
        msgs: traffic.0,
        bytes: traffic.1,
    });
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use lucky_core::runtime::{SessionConfig, Setup};
    use lucky_core::ProtocolConfig;
    use lucky_types::Params;
    use std::os::fd::AsRawFd;

    fn one_session_worker(
        listener: TcpListener,
        deadline_micros: u64,
    ) -> (PolledWorker, Sender<Job>, Arc<Mutex<NetStats>>) {
        let setup = Setup::from(Params::new(1, 0, 1, 0).unwrap());
        let protocol = ProtocolConfig { timer_micros: 1_000, ..ProtocolConfig::default() };
        let session = setup.make_writer_session(
            RegisterId(0),
            protocol,
            SessionConfig::with_deadline(deadline_micros),
        );
        let pid = session.id();
        let key = (RegisterId(0), 0u32);
        let mut sessions = BTreeMap::new();
        sessions.insert(key, PolledSlot::new(session));
        let mut by_pid = BTreeMap::new();
        by_pid.insert(pid, key);
        let (job_tx, job_rx) = unbounded::<Job>();
        // The router receiver drops immediately: this worker's sends go
        // nowhere by design (advance() ignores router send errors).
        let (router_tx, _router_rx) = unbounded::<Envelope>();
        let stats = Arc::new(Mutex::new(NetStats::default()));
        let tracer = Arc::new(lucky_trace::Tracer::new(lucky_trace::TraceConfig::disabled()));
        let worker = PolledWorker {
            sessions,
            by_pid,
            jobs: job_rx,
            router: router_tx,
            io: PollIo::tcp(listener, &stats, &tracer),
            history: Arc::new(Mutex::new(History::new())),
            stats: Arc::clone(&stats),
            epoch: Instant::now(),
            tracer,
        };
        (worker, job_tx, stats)
    }

    #[test]
    fn sabotaged_listener_degrades_instead_of_panicking() {
        // Close the listener's descriptor out from under it: the next
        // fcntl (set_nonblocking) fails with EBADF. The old code
        // `.expect()`ed here and killed the whole shard worker.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        epoll::close_fd(listener.as_raw_fd());
        let stats = Arc::new(Mutex::new(NetStats::default()));
        let tracer = lucky_trace::Tracer::new(lucky_trace::TraceConfig::disabled());
        let io = PollIo::tcp(listener, &stats, &tracer);
        match &io {
            PollIo::Tcp { listener, conns } => {
                assert!(listener.is_none(), "unusable listener is abandoned, not kept blocking");
                assert!(conns.is_empty());
            }
            PollIo::Channel(_) => panic!("tcp() builds a Tcp source"),
        }
        assert_eq!(stats.lock().io_errors, 1, "the degradation is counted");
    }

    #[test]
    fn worker_with_degraded_listener_stays_alive_and_times_ops_out() {
        // A worker whose listener was abandoned at setup keeps running:
        // the submitted op can never receive acks, so it fails with
        // TimedOut at its deadline — and the worker then exits cleanly
        // when the job sender drops, instead of having panicked.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        epoll::close_fd(listener.as_raw_fd());
        let (worker, job_tx, stats) = one_session_worker(listener, 50_000);
        assert_eq!(stats.lock().io_errors, 1);
        let handle = std::thread::spawn(move || worker.run());
        let (reply, rx) = unbounded();
        job_tx
            .send(Job {
                slot: (RegisterId(0), 0),
                op: Op::Write(lucky_types::Value::from_u64(1)),
                reply,
                notify: None,
            })
            .unwrap();
        let result = rx.recv_timeout(Duration::from_secs(5)).expect("worker still answers");
        assert_eq!(result.unwrap_err(), NetError::TimedOut);
        drop(job_tx);
        handle.join().expect("worker exits cleanly, no panic");
    }
}
