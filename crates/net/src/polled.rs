//! The nonblocking, readiness-style polled driver.
//!
//! Where the threaded driver parks one OS thread per in-flight operation
//! (`ClientDriver::run_op` blocks its caller), the polled driver
//! multiplexes **all of a shard's client sessions on one thread**: a
//! single loop drains the job queue, polls the shard's input source,
//! wakes whichever sessions are due and pumps their outputs to the
//! router. This is exactly the shape an epoll/io_uring runtime would
//! take — the sans-io `ClientSession` already isolates all protocol and
//! deadline logic — except the readiness notification is a short
//! sleep-capped poll, so no OS-specific reactor is needed.
//!
//! Input sources per [`Transport`](crate::Transport):
//!
//! * **Channel** — the worker owns its client processes' inboxes and
//!   `try_recv`s them;
//! * **Tcp** — the worker owns its slot's loopback listener *itself*
//!   (the fabric spawns no reader threads for polled slots): it accepts
//!   the router's connection nonblocking, reads whatever bytes arrived,
//!   reassembles frames with [`FrameDecoder`], decodes the packet parts
//!   and dispatches them to sessions by recipient. One thread, zero
//!   blocking reads — the push-based decoder from `lucky-wire` is what
//!   makes this loop possible.

use crate::cluster::{NetError, NetOutcome};
use crate::router::{Envelope, NetStats};
use crossbeam::channel::{Receiver, Sender};
use lucky_core::runtime::{ClientSession, Input, SessionError};
use lucky_types::{History, Message, Op, OpId, OpRecord, ProcessId, RegisterId, Time};
use lucky_wire::{decode_packet, FrameDecoder};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which client-driving strategy a `NetStore` deploys on its shard
/// workers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Driver {
    /// One blocking driver per job: a shard worker runs its queued
    /// operations to completion one at a time (the original runtime).
    #[default]
    Threaded,
    /// One nonblocking poll loop per shard worker, multiplexing all of
    /// the shard's client sessions: operations on different sessions of
    /// one worker proceed concurrently.
    Polled,
}

/// A job submitted to a shard worker (threaded or polled): run `op`
/// on the client core/session keyed by `slot` and send the outcome back
/// through `reply`.
pub(crate) struct Job {
    pub(crate) slot: (RegisterId, u32),
    pub(crate) op: Op,
    pub(crate) reply: Sender<Result<NetOutcome, NetError>>,
}

/// The operation currently in flight on one session.
struct Current {
    op: Op,
    reply: Sender<Result<NetOutcome, NetError>>,
    start: Instant,
    invoked_at: Time,
}

/// One session plus its queued work.
pub(crate) struct PolledSlot {
    pub(crate) session: ClientSession,
    queue: VecDeque<(Op, Sender<Result<NetOutcome, NetError>>)>,
    current: Option<Current>,
}

impl PolledSlot {
    pub(crate) fn new(session: ClientSession) -> PolledSlot {
        PolledSlot { session, queue: VecDeque::new(), current: None }
    }

    fn is_idle(&self) -> bool {
        self.current.is_none() && self.queue.is_empty()
    }
}

/// Where a polled worker's inbound protocol messages come from.
pub(crate) enum PollIo {
    /// Channel transport: the per-process inboxes this worker hosts.
    Channel(BTreeMap<ProcessId, Receiver<(ProcessId, Message)>>),
    /// TCP transport: the worker's own loopback listener (nonblocking),
    /// plus the connections accepted so far with their frame decoders.
    Tcp { listener: TcpListener, conns: Vec<(TcpStream, FrameDecoder)> },
}

impl PollIo {
    /// A nonblocking TCP source. The listener must already be bound;
    /// this flips it (and every accepted connection) nonblocking.
    pub(crate) fn tcp(listener: TcpListener) -> PollIo {
        listener.set_nonblocking(true).expect("set listener nonblocking");
        PollIo::Tcp { listener, conns: Vec::new() }
    }
}

/// Upper bound on one poll-loop sleep: inputs (jobs, bytes) that arrive
/// while the worker sleeps are picked up at worst this much later.
const POLL_TICK: Duration = Duration::from_micros(500);

/// How long an *idle* worker (no session pending, no job queued) parks
/// on the job queue before re-checking for shutdown.
const IDLE_PARK: Duration = Duration::from_millis(20);

pub(crate) struct PolledWorker {
    pub(crate) sessions: BTreeMap<(RegisterId, u32), PolledSlot>,
    /// Recipient → session key, for dispatching inbound messages.
    pub(crate) by_pid: BTreeMap<ProcessId, (RegisterId, u32)>,
    pub(crate) jobs: Receiver<Job>,
    pub(crate) router: Sender<Envelope>,
    pub(crate) io: PollIo,
    pub(crate) history: Arc<Mutex<History>>,
    pub(crate) stats: Arc<Mutex<NetStats>>,
    pub(crate) epoch: Instant,
}

impl PolledWorker {
    /// Session time: microseconds since the store's epoch (shared by
    /// every worker so history timestamps interleave correctly).
    fn now(&self) -> Time {
        Time(self.epoch.elapsed().as_micros() as u64)
    }

    /// Run the poll loop until the store drops the job senders and every
    /// session has drained its work.
    pub(crate) fn run(mut self) {
        let mut jobs_open = true;
        loop {
            // 1. Drain newly submitted jobs into their session queues.
            while jobs_open {
                match self.jobs.try_recv() {
                    Ok(job) => self.enqueue(job),
                    Err(crossbeam::channel::TryRecvError::Empty) => break,
                    Err(crossbeam::channel::TryRecvError::Disconnected) => {
                        jobs_open = false;
                        break;
                    }
                }
            }
            // 2. Poll the input source and feed deliveries to sessions.
            self.poll_io();
            // 3. Wake every session whose next_wake is due.
            let now = self.now();
            for slot in self.sessions.values_mut() {
                if slot.session.next_wake().is_some_and(|due| due <= now) {
                    slot.session.handle(Input::Wake, now);
                }
            }
            // 4. Start queued operations, pump outputs, settle outcomes.
            self.advance();
            // 5. Exit once no more jobs can arrive and nothing is left.
            let all_idle = self.sessions.values().all(PolledSlot::is_idle);
            if !jobs_open && all_idle {
                return;
            }
            // 6. Sleep until the next wake (capped) — or, fully idle,
            //    park on the job queue so an idle store costs no CPU.
            let busy = self.sessions.values().any(|s| !s.is_idle());
            if busy {
                let now = self.now();
                let next = self
                    .sessions
                    .values()
                    .filter_map(|s| s.session.next_wake())
                    .min()
                    .map(|due| Duration::from_micros(due.0.saturating_sub(now.0)))
                    .unwrap_or(POLL_TICK);
                std::thread::sleep(next.min(POLL_TICK));
            } else if jobs_open {
                match self.jobs.recv_timeout(IDLE_PARK) {
                    Ok(job) => self.enqueue(job),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => jobs_open = false,
                }
            }
        }
    }

    fn enqueue(&mut self, job: Job) {
        // An unknown slot cannot happen (handle construction prevents
        // it); if it did, dropping the reply sender surfaces as a
        // disconnect to the caller.
        if let Some(slot) = self.sessions.get_mut(&job.slot) {
            slot.queue.push_back((job.op, job.reply));
        }
    }

    /// Drain whatever input arrived without blocking.
    fn poll_io(&mut self) {
        let now = self.now();
        match &mut self.io {
            PollIo::Channel(inboxes) => {
                for (pid, rx) in inboxes.iter() {
                    let Some(&key) = self.by_pid.get(pid) else { continue };
                    while let Ok((from, msg)) = rx.try_recv() {
                        if let Some(slot) = self.sessions.get_mut(&key) {
                            slot.session.handle(Input::Deliver(from, msg), now);
                        }
                    }
                }
            }
            PollIo::Tcp { listener, conns } => {
                // Accept whatever the router has connected.
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(true).expect("set stream nonblocking");
                            conns.push((stream, FrameDecoder::new()));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
                // Read every connection dry, decode, dispatch.
                let mut buf = [0u8; 16 * 1024];
                let mut closed: Vec<usize> = Vec::new();
                for (i, (stream, dec)) in conns.iter_mut().enumerate() {
                    loop {
                        match stream.read(&mut buf) {
                            Ok(0) => {
                                closed.push(i);
                                break;
                            }
                            Ok(n) => {
                                dec.feed(&buf[..n]);
                                loop {
                                    match dec.next_frame() {
                                        Ok(Some(payload)) => match decode_packet(&payload) {
                                            Ok(parts) => dispatch(
                                                &parts,
                                                &self.by_pid,
                                                &mut self.sessions,
                                                &self.stats,
                                                now,
                                            ),
                                            Err(_) => {
                                                self.stats.lock().decode_errors += 1;
                                                closed.push(i);
                                                break;
                                            }
                                        },
                                        Ok(None) => break,
                                        Err(_) => {
                                            self.stats.lock().decode_errors += 1;
                                            closed.push(i);
                                            break;
                                        }
                                    }
                                }
                                if closed.last() == Some(&i) {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(_) => {
                                closed.push(i);
                                break;
                            }
                        }
                    }
                }
                for i in closed.into_iter().rev() {
                    conns.remove(i);
                }
            }
        }
    }

    /// Begin queued operations on idle sessions, forward outputs to the
    /// router, and resolve completed or failed operations.
    fn advance(&mut self) {
        let now = self.now();
        for slot in self.sessions.values_mut() {
            // Start the next queued op when the session is free.
            if slot.current.is_none() && slot.session.is_ready() {
                if let Some((op, reply)) = slot.queue.pop_front() {
                    slot.session
                        .begin(op.clone(), now)
                        .expect("is_ready checked; sessions run one op at a time");
                    slot.current =
                        Some(Current { op, reply, start: Instant::now(), invoked_at: now });
                }
            }
            // Pump outputs.
            let from = slot.session.id();
            while let Some(out) = slot.session.poll_output() {
                let (to, msg) = out.into_send();
                let _ = self.router.send(Envelope::Deliver { from, to, msg });
            }
            // Settle.
            if let Some(outcome) = slot.session.take_outcome() {
                let Some(cur) = slot.current.take() else { continue };
                let net = NetOutcome::from_session(outcome, &cur.op, cur.start.elapsed());
                append_history(
                    &self.history,
                    slot.session.reg(),
                    slot.session.id(),
                    cur.op,
                    cur.invoked_at,
                    Some((now, &net)),
                );
                let _ = cur.reply.send(Ok(net));
            } else if let Some(err) = slot.session.take_failure() {
                let Some(cur) = slot.current.take() else { continue };
                append_history(
                    &self.history,
                    slot.session.reg(),
                    slot.session.id(),
                    cur.op,
                    cur.invoked_at,
                    None,
                );
                let _ = cur.reply.send(Err(match err {
                    SessionError::DeadlineExceeded | SessionError::Busy => NetError::TimedOut,
                }));
            }
        }
    }
}

/// Hand decoded packet parts to their sessions. Parts addressed to a
/// process this worker does not host (only hostile frames produce one)
/// count as dropped, mirroring the fabric's accounting.
fn dispatch(
    parts: &[(ProcessId, ProcessId, Message)],
    by_pid: &BTreeMap<ProcessId, (RegisterId, u32)>,
    sessions: &mut BTreeMap<(RegisterId, u32), PolledSlot>,
    stats: &Arc<Mutex<NetStats>>,
    now: Time,
) {
    for (from, to, msg) in parts {
        match by_pid.get(to).and_then(|key| sessions.get_mut(key)) {
            Some(slot) => {
                slot.session.handle(Input::Deliver(*from, msg.clone()), now);
            }
            None => stats.lock().dropped += msg.part_count() as u64,
        }
    }
}

/// Append one finished (or abandoned) operation to the shared history —
/// the single recording path for both shard-worker kinds. `completion`
/// is `None` for a failed operation (it stays an incomplete record, so
/// the checkers treat it as pending, never as a bogus completion).
pub(crate) fn append_history(
    history: &Arc<Mutex<History>>,
    reg: RegisterId,
    client: ProcessId,
    op: Op,
    invoked_at: Time,
    completion: Option<(Time, &NetOutcome)>,
) {
    let mut h = history.lock();
    let id = OpId(h.ops.len() as u64);
    let (completed_at, result, rounds, fast) = match completion {
        Some((at, net)) => (
            Some(at),
            match op {
                Op::Read => Some(net.value.clone()),
                Op::Write(_) => None,
            },
            net.rounds,
            net.fast,
        ),
        None => (None, None, 0, false),
    };
    h.ops.push(OpRecord {
        id,
        reg,
        client,
        op,
        invoked_at,
        completed_at,
        result,
        rounds,
        fast,
        msgs: 0,
        bytes: 0,
    });
}
