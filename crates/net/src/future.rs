//! Futures over store operations.
//!
//! [`OpFuture`] is the async face of [`OpTicket`](crate::OpTicket): the
//! reply channel stays the transport for the *result*, while an
//! [`OpNotify`] carries the *readiness signal* back to whichever
//! executor is polling the future. The contract:
//!
//! * the future registers its [`Waker`] with the shared `OpNotify`
//!   **before** polling the ticket, so a settle that races the poll
//!   still wakes it;
//! * the submitting side wraps the notify in a [`NotifyGuard`] that
//!   travels inside the job and fires on drop — the normal settle path
//!   drops it right *after* the reply lands in the channel, and every
//!   abnormal path (job never enqueued, worker died, store shut down)
//!   drops it too, so a pending `OpFuture` can never be lost: its next
//!   poll observes either the result or the channel's disconnect.
//!
//! Any executor works — [`crate::exec::block_on`] and
//! [`crate::exec::Executor`] are the batteries included.

use crate::cluster::{NetError, NetOutcome};
use crate::store::OpTicket;
use parking_lot::Mutex;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

/// The wake channel between one submitted op and the future awaiting
/// it. Shared: the future holds one `Arc`, the job's [`NotifyGuard`]
/// the other.
pub(crate) struct OpNotify {
    waker: Mutex<Option<Waker>>,
}

impl OpNotify {
    pub(crate) fn new() -> Arc<OpNotify> {
        Arc::new(OpNotify { waker: Mutex::new(None) })
    }

    /// Remember the waker of the task currently polling the future.
    fn register(&self, waker: &Waker) {
        let mut slot = self.waker.lock();
        match slot.as_mut() {
            Some(w) => w.clone_from(waker),
            None => *slot = Some(waker.clone()),
        }
    }

    /// Wake the registered task, if any.
    fn notify(&self) {
        if let Some(waker) = self.waker.lock().take() {
            waker.wake();
        }
    }
}

/// Fires its [`OpNotify`] when dropped. Travels inside the job so that
/// *every* exit — reply sent, job dropped unsent, worker panic unwind,
/// store shutdown discarding queues — wakes the future exactly once.
pub(crate) struct NotifyGuard(Arc<OpNotify>);

impl NotifyGuard {
    pub(crate) fn new(notify: Arc<OpNotify>) -> NotifyGuard {
        NotifyGuard(notify)
    }
}

impl Drop for NotifyGuard {
    fn drop(&mut self) {
        self.0.notify();
    }
}

impl std::fmt::Debug for NotifyGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NotifyGuard").finish_non_exhaustive()
    }
}

/// A pending store operation as a [`Future`], from
/// [`NetRegisterHandle::write_future`](crate::NetRegisterHandle::write_future)
/// / [`read_future`](crate::NetRegisterHandle::read_future) (or their
/// `async fn` sugar [`write_async`](crate::NetRegisterHandle::write_async)
/// / [`read_async`](crate::NetRegisterHandle::read_async)).
///
/// Resolves to exactly what [`OpTicket::wait`] would return. Polling
/// after completion yields the cached result again (the future is
/// fused). Dropping it abandons the wait, never the operation — the op
/// still runs and lands in the store history.
pub struct OpFuture {
    ticket: OpTicket,
    notify: Arc<OpNotify>,
}

impl OpFuture {
    pub(crate) fn new(ticket: OpTicket, notify: Arc<OpNotify>) -> OpFuture {
        OpFuture { ticket, notify }
    }
}

impl Future for OpFuture {
    type Output = Result<NetOutcome, NetError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // `get_mut` is fine: OpFuture is Unpin. Register before
        // checking — a settle between the check and the register would
        // otherwise be a lost wakeup.
        let this = self.get_mut();
        this.notify.register(cx.waker());
        match this.ticket.try_settled() {
            Some(result) => Poll::Ready(result),
            None => Poll::Pending,
        }
    }
}

impl std::fmt::Debug for OpFuture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpFuture").field("ticket", &self.ticket).finish_non_exhaustive()
    }
}
