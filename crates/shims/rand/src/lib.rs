//! Offline stand-in for the slice of `rand` 0.8 this workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::{gen, gen_range}`](Rng).
//!
//! The generator is SplitMix64 — deterministic per seed (the property the
//! simulator, router and tests rely on) but its streams do not match
//! upstream `SmallRng`. See `crates/shims/README.md`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Derive a value from one raw 64-bit draw.
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),+) => {
        $(impl Standard for $ty {
            fn from_u64(raw: u64) -> $ty {
                raw as $ty
            }
        })+
    };
}
impl_standard_int!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn from_u64(raw: u64) -> bool {
        raw & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),+) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end - start) as u128 + 1;
                    start + ((rng.next_u64() as u128 % span) as $ty)
                }
            }
        )+
    };
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// The subset of rand's `Rng` the workspace uses.
pub trait Rng {
    /// One raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    /// A uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable generator (SplitMix64).
    #[derive(Clone, PartialEq, Eq, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(5..10);
            assert!((5..10).contains(&x));
            let y: usize = r.gen_range(0..3);
            assert!(y < 3);
            let z: u64 = r.gen_range(2..=4);
            assert!((2..=4).contains(&z));
        }
    }

    #[test]
    fn gen_covers_both_bools() {
        let mut r = SmallRng::seed_from_u64(3);
        let draws: Vec<bool> = (0..64).map(|_| r.gen()).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}
