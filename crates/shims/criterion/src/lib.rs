//! Offline stand-in for the slice of `criterion` this workspace uses:
//! groups, `bench_function`, `bench_with_input`, `Bencher::{iter,
//! iter_batched_ref}` and the `criterion_group!`/`criterion_main!`
//! macros. Reports mean wall-clock time per iteration on stdout — no
//! statistics, plots or baselines. See `crates/shims/README.md`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a batched bench sizes its batches (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// A parameterised benchmark id.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the parameter alone.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Drives one benchmark's timing loop.
#[derive(Debug)]
pub struct Bencher {
    nanos_per_iter: f64,
}

/// Target wall-clock budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 100_000;

impl Bencher {
    fn new() -> Bencher {
        Bencher { nanos_per_iter: f64::NAN }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_BUDGET && iters < MAX_ITERS {
            black_box(routine());
            iters += 1;
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    }

    /// Time `routine` against fresh state from `setup` each iteration.
    pub fn iter_batched_ref<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(&mut S) -> O,
        _size: BatchSize,
    ) {
        let mut state = setup();
        black_box(routine(&mut state));
        let start = Instant::now();
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_BUDGET && iters < MAX_ITERS {
            let mut state = setup();
            let t = Instant::now();
            black_box(routine(&mut state));
            spent += t.elapsed();
            iters += 1;
        }
        self.nanos_per_iter = spent.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn report(label: &str, nanos: f64) {
    if nanos >= 1_000_000.0 {
        println!("{label:<50} {:>12.3} ms/iter", nanos / 1_000_000.0);
    } else if nanos >= 1_000.0 {
        println!("{label:<50} {:>12.3} µs/iter", nanos / 1_000.0);
    } else {
        println!("{label:<50} {nanos:>12.1} ns/iter");
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Run `f`'s timing loop and report it under this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.nanos_per_iter);
        self
    }

    /// Like [`BenchmarkGroup::bench_function`], threading `input` through.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.nanos_per_iter);
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&id.to_string(), b.nanos_per_iter);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// The `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loops_produce_finite_means() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| b.iter(|| n * 2));
        group.finish();
        c.bench_function("batched", |b| {
            b.iter_batched_ref(Vec::<u64>::new, |v| v.push(1), BatchSize::SmallInput)
        });
    }
}
