//! Offline stand-in for the slice of `criterion` this workspace uses:
//! groups, `bench_function`, `bench_with_input`, `Bencher::{iter,
//! iter_batched_ref}` and the `criterion_group!`/`criterion_main!`
//! macros. Reports **per-iteration sample statistics** on stdout —
//! median, mean, standard deviation and the min/max envelope over
//! warmup-trimmed samples — no plots.
//!
//! ## Machine-readable snapshots
//!
//! Every completed benchmark is also recorded in a process-wide
//! registry. When the `BENCH_JSON` environment variable names a path,
//! the `criterion_main!`-generated `main` writes all recorded results
//! there as a single JSON document after the last group finishes:
//!
//! ```json
//! { "benchmarks": [ { "label": "wire/decode_pw", "median_ns": 133.2,
//!   "stddev_ns": 4.1, "mean_ns": 140.0, "min_ns": 129.0,
//!   "max_ns": 210.5, "samples": 512 } ] }
//! ```
//!
//! This is what `tools/bench_gate.rs` diffs against the committed
//! `BENCH_*.json` snapshots in CI. See `crates/shims/README.md`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a batched bench sizes its batches (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// A parameterised benchmark id.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the parameter alone.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Summary statistics over one benchmark's per-iteration samples
/// (nanoseconds), computed after dropping the earliest `WARMUP_TRIM`
/// fraction — the cache-cold, branch-predictor-cold head of the run.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Median ns/iter over the trimmed samples.
    pub median: f64,
    /// Mean ns/iter.
    pub mean: f64,
    /// Population standard deviation of ns/iter.
    pub stddev: f64,
    /// Fastest trimmed sample.
    pub min: f64,
    /// Slowest trimmed sample.
    pub max: f64,
    /// Trimmed sample count.
    pub samples: usize,
}

/// Fraction of the earliest samples dropped before computing statistics.
const WARMUP_TRIM: f64 = 0.05;

impl Stats {
    fn from_samples(mut samples: Vec<f64>) -> Stats {
        assert!(!samples.is_empty(), "at least one sample");
        // Trim the warmup head (in arrival order), keeping at least one.
        let drop = ((samples.len() as f64 * WARMUP_TRIM) as usize).min(samples.len() - 1);
        samples.drain(..drop);
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        let mut sorted = samples;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let median =
            if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 };
        Stats { median, mean, stddev: var.sqrt(), min: sorted[0], max: sorted[n - 1], samples: n }
    }
}

/// Drives one benchmark's timing loop, collecting per-iteration samples.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
}

/// Target wall-clock budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 100_000;
/// Target duration of one timed batch: cheap routines are grouped so the
/// `Instant` read overhead does not dominate the sample.
const BATCH_TARGET_NANOS: u128 = 2_000;

impl Bencher {
    fn new() -> Bencher {
        Bencher { samples: Vec::new() }
    }

    /// Time `routine` repeatedly, recording ns/iter samples. Routines
    /// cheaper than the clock read are timed in calibrated batches and
    /// the batch mean recorded per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up (not recorded) + batch-size calibration.
        let cal = Instant::now();
        for _ in 0..3 {
            black_box(routine());
        }
        let per_call = (cal.elapsed().as_nanos() / 3).max(1);
        let batch = ((BATCH_TARGET_NANOS / per_call).clamp(1, 1_000)) as u64;
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_BUDGET && iters < MAX_ITERS {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            iters += batch;
        }
    }

    /// Time `routine` against fresh state from `setup` each iteration
    /// (setup time excluded from the samples).
    pub fn iter_batched_ref<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(&mut S) -> O,
        _size: BatchSize,
    ) {
        // Warm-up (not recorded).
        let mut state = setup();
        black_box(routine(&mut state));
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_BUDGET && iters < MAX_ITERS {
            let mut state = setup();
            let t = Instant::now();
            black_box(routine(&mut state));
            self.samples.push(t.elapsed().as_nanos() as f64);
            iters += 1;
        }
    }

    fn stats(&self) -> Stats {
        Stats::from_samples(self.samples.clone())
    }
}

fn fmt_ns(nanos: f64) -> String {
    if nanos >= 1_000_000.0 {
        format!("{:.3} ms", nanos / 1_000_000.0)
    } else if nanos >= 1_000.0 {
        format!("{:.3} µs", nanos / 1_000.0)
    } else {
        format!("{nanos:.1} ns")
    }
}

/// Process-wide record of every `(label, stats)` a bench run produced,
/// in completion order. Drained by [`export_json_if_requested`].
static REGISTRY: Mutex<Vec<(String, Stats)>> = Mutex::new(Vec::new());

fn report(label: &str, stats: &Stats) {
    println!(
        "{label:<50} median {:>10}/iter  ±{} [{} .. {}]  (mean {}, N={})",
        fmt_ns(stats.median),
        fmt_ns(stats.stddev),
        fmt_ns(stats.min),
        fmt_ns(stats.max),
        fmt_ns(stats.mean),
        stats.samples,
    );
    REGISTRY.lock().expect("registry lock").push((label.to_string(), *stats));
}

/// Minimal JSON string escape — bench labels only hold `/`-separated
/// identifiers, but quoting and control bytes must never corrupt the
/// snapshot regardless.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render every recorded result as the snapshot JSON document.
pub fn results_json() -> String {
    let registry = REGISTRY.lock().expect("registry lock");
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (label, s)) in registry.iter().enumerate() {
        let comma = if i + 1 < registry.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"label\": \"{}\", \"median_ns\": {:.3}, \"stddev_ns\": {:.3}, \
             \"mean_ns\": {:.3}, \"min_ns\": {:.3}, \"max_ns\": {:.3}, \"samples\": {} }}{comma}\n",
            json_escape(label),
            s.median,
            s.stddev,
            s.mean,
            s.min,
            s.max,
            s.samples,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// If `BENCH_JSON` names a path, write the snapshot JSON there. Called
/// by the `main` that `criterion_main!` generates, after every group
/// has run; harmless to call when the variable is unset.
pub fn export_json_if_requested() {
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if !path.is_empty() {
            std::fs::write(&path, results_json())
                .unwrap_or_else(|e| panic!("writing BENCH_JSON={path}: {e}"));
            eprintln!("bench snapshot written to {path}");
        }
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Run `f`'s timing loop and report it under this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.stats());
        self
    }

    /// Like [`BenchmarkGroup::bench_function`], threading `input` through.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.stats());
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&id.to_string(), &b.stats());
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// The `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::export_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loops_produce_finite_stats() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| b.iter(|| n * 2));
        group.finish();
        c.bench_function("batched", |b| {
            b.iter_batched_ref(Vec::<u64>::new, |v| v.push(1), BatchSize::SmallInput)
        });
    }

    #[test]
    fn stats_are_ordered_and_trimmed() {
        // 20 samples: the 5% trim drops exactly the first (slowest,
        // cache-cold) one; the remaining 19 give median == mean == 10.
        let mut samples = vec![1_000.0]; // warmup outlier, arrival order
        samples.extend(std::iter::repeat_n(10.0, 19));
        let s = Stats::from_samples(samples);
        assert_eq!(s.samples, 19);
        assert_eq!(s.median, 10.0);
        assert_eq!(s.mean, 10.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!((s.min, s.max), (10.0, 10.0));
    }

    #[test]
    fn completed_benches_land_in_the_json_snapshot() {
        let mut c = Criterion::default();
        c.bench_function("snapshot/under_test", |b| b.iter(|| 2 + 2));
        let json = results_json();
        assert!(json.contains("\"label\": \"snapshot/under_test\""));
        assert!(json.contains("\"median_ns\": "));
        assert!(json.contains("\"stddev_ns\": "));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn json_labels_are_escaped() {
        assert_eq!(json_escape("a/b"), "a/b");
        assert_eq!(json_escape("q\"uo\\te"), "q\\\"uo\\\\te");
        assert_eq!(json_escape("tab\tnl\n"), "tab\\u0009nl\\u000a");
    }

    #[test]
    fn median_of_even_sample_counts_interpolates() {
        let s = Stats::from_samples(vec![10.0, 30.0]);
        // Too few samples to trim: both kept.
        assert_eq!(s.samples, 2);
        assert_eq!(s.median, 20.0);
        assert!(s.min <= s.median && s.median <= s.max);
        assert!(s.stddev > 0.0);
    }
}
