//! Offline stand-in for the `serde` facade — **intentionally inert**.
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize,
//! Serialize}` and `#[derive(Serialize, Deserialize)]` compile
//! unchanged. The derives generate *no code*: they exist purely so the
//! workspace's type annotations survive an offline build and so the
//! real `serde` can be swapped back in by editing one line of the root
//! `Cargo.toml` (see `crates/shims/README.md`).
//!
//! **No runtime path encodes through this shim.** Every byte that
//! actually crosses a wire in this workspace is produced and consumed
//! by `lucky-wire` — the hand-rolled binary codec with its own
//! `Encode`/`Decode` traits, varints, framing and checksums — which the
//! TCP transport in `lucky-net`, the Byzantine codec adversaries and
//! the benchmarks all call directly. Nothing anywhere calls a serde
//! `serialize`/`deserialize` method (the shim does not even provide
//! one), so there is no silent no-op encoding to mistake for real
//! serialization: code that wants bytes *must* go through `lucky-wire`,
//! and code that only wants the derive markers keeps compiling against
//! either serde.

pub use serde_derive::{Deserialize, Serialize};
