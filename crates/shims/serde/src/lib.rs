//! Offline stand-in for the `serde` facade.
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize,
//! Serialize}` and `#[derive(Serialize, Deserialize)]` compile unchanged.
//! See `crates/shims/README.md` for the swap-back story.

pub use serde_derive::{Deserialize, Serialize};
