//! No-op `Serialize`/`Deserialize` derives for the offline build.
//!
//! The workspace only uses serde's derives to mark types as
//! serializable; nothing in the build serializes at runtime, so emitting
//! no code preserves behaviour. See `crates/shims/README.md`.

use proc_macro::TokenStream;

/// Derives nothing; the real implementation lives in upstream serde.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing; the real implementation lives in upstream serde.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
