//! No-op `Serialize`/`Deserialize` derives for the offline build —
//! **intentionally inert**.
//!
//! The workspace only uses serde's derives to mark types as
//! serializable; no runtime path calls serde to produce bytes, so
//! emitting no code preserves behaviour. Real on-the-wire encoding is
//! `lucky-wire`'s job (its `Encode`/`Decode` impls are hand-written,
//! not derived), which every transport and adversary calls directly.
//! See `crates/shims/README.md` and `crates/shims/serde/src/lib.rs`.

use proc_macro::TokenStream;

/// Derives nothing; the real implementation lives in upstream serde.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing; the real implementation lives in upstream serde.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
