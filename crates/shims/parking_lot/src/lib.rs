//! Offline stand-in for `parking_lot::Mutex`: a thin wrapper over
//! `std::sync::Mutex` whose `lock()` ignores poisoning (parking_lot has
//! no poisoning at all). See `crates/shims/README.md`.

#![forbid(unsafe_code)]

use std::sync::MutexGuard;

/// A mutex whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}
