//! Minimal, dependency-free bindings to Linux `epoll` and `eventfd`.
//!
//! Unlike the other `crates/shims/` members this is not a stand-in for a
//! crates.io dependency: it is the workspace's **FFI isolation crate**.
//! `lucky-net` (and the facade) carry `#![forbid(unsafe_code)]`, so the
//! handful of raw `libc` calls a real reactor needs live here, behind a
//! safe, RAII, `std`-only API:
//!
//! * [`Epoll`] — an `epoll` instance: register file descriptors for
//!   level-triggered readability and block in [`Epoll::wait`] with an
//!   optional timeout (the reactor folds session timers into it).
//! * [`WakeFd`] — an `eventfd` used to wake a reactor blocked in
//!   `epoll_wait` from another thread (job submission, shutdown).
//! * [`TimerFd`] — a `CLOCK_MONOTONIC` `timerfd` registered as an epoll
//!   interest: arming it with the exact next-deadline duration gives
//!   the reactor **nanosecond-granular** timeouts where `epoll_wait`'s
//!   own timeout argument rounds up to whole milliseconds.
//! * [`close_fd`] — a fault-injection helper: tests in `forbid(unsafe)`
//!   crates use it to sabotage a socket's descriptor and exercise the
//!   graceful-degradation paths without any unsafe of their own.
//!
//! On non-Linux targets every constructor returns
//! [`std::io::ErrorKind::Unsupported`]; callers are expected to degrade
//! to their portable fallback (the net crate's sleep-capped poll loop).

#![warn(missing_docs, missing_debug_implementations)]

use std::time::Duration;

#[cfg(target_os = "linux")]
pub use imp::{close_fd, Epoll, TimerFd, WakeFd};
#[cfg(not(target_os = "linux"))]
pub use stub::{close_fd, Epoll, TimerFd, WakeFd};

/// One readiness notification out of [`Epoll::wait`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// The peer hung up or the descriptor errored: the registered fd
    /// should be read to EOF and deregistered.
    pub closed: bool,
}

/// Reusable buffer for [`Epoll::wait`] results.
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty result buffer (capacity grows on demand).
    pub fn new() -> Events {
        Events::default()
    }

    /// The events delivered by the most recent [`Epoll::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.inner.iter().copied()
    }

    /// Number of events delivered by the most recent wait.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` iff the most recent wait delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

/// Clamp an optional wait timeout to epoll's millisecond resolution,
/// rounding **up** so a timer due in 300µs blocks 1ms rather than
/// busy-spinning at 0ms; `None` means block indefinitely (`-1`).
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => d.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32,
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{timeout_ms, Event, Events};
    use std::io;
    use std::os::fd::{AsRawFd, RawFd};
    use std::time::Duration;

    // `std` already links libc on Linux; these declarations only name
    // symbols the binary carries anyway.
    #[allow(non_camel_case_types)]
    type c_int = i32;
    #[allow(non_camel_case_types)]
    type c_uint = u32;

    /// Kernel ABI of one epoll event. Packed on x86-64 (the kernel's
    /// layout predates the arch's natural alignment), natural elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLLIN: u32 = 0x1;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;
    const CLOCK_MONOTONIC: c_int = 1;
    const TFD_CLOEXEC: c_int = 0o2000000;
    const TFD_NONBLOCK: c_int = 0o4000;

    /// Kernel ABI of one timerfd setting (two `struct timespec`s).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Itimerspec {
        it_interval: Timespec,
        it_value: Timespec,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn timerfd_create(clockid: c_int, flags: c_int) -> c_int;
        fn timerfd_settime(
            fd: c_int,
            flags: c_int,
            new_value: *const Itimerspec,
            old_value: *mut Itimerspec,
        ) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// How many kernel events one `epoll_wait` call may deliver. More
    /// ready descriptors than this simply surface on the next call —
    /// level-triggered registration keeps them ready.
    const WAIT_BATCH: usize = 64;

    /// A Linux `epoll` instance (closed on drop).
    pub struct Epoll {
        fd: RawFd,
        /// FFI-side buffer reused across waits.
        buf: Vec<EpollEvent>,
    }

    impl std::fmt::Debug for Epoll {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Epoll").field("fd", &self.fd).finish_non_exhaustive()
        }
    }

    impl Epoll {
        /// Create a new epoll instance.
        ///
        /// # Errors
        ///
        /// The raw `epoll_create1` failure, e.g. fd exhaustion.
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes no pointers.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd, buf: vec![EpollEvent { events: 0, data: 0 }; WAIT_BATCH] })
        }

        /// Register `fd` for level-triggered readability (and peer
        /// hang-up) under `token`.
        ///
        /// # Errors
        ///
        /// The raw `epoll_ctl` failure (e.g. `EBADF` for a sabotaged
        /// descriptor, `EEXIST` for a double registration).
        pub fn add(&self, fd: &impl AsRawFd, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events: EPOLLIN | EPOLLRDHUP, data: token };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd.as_raw_fd(), &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Deregister `fd`. Closing a descriptor removes it implicitly;
        /// this exists for descriptors that outlive their registration.
        ///
        /// # Errors
        ///
        /// The raw `epoll_ctl` failure.
        pub fn delete(&self, fd: &impl AsRawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: `ev` outlives the call (ignored for DEL but must
            // be non-null on pre-2.6.9 ABIs).
            let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd.as_raw_fd(), &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Block until at least one registered descriptor is ready or
        /// the timeout elapses (`None` blocks indefinitely; sub-ms
        /// timeouts round **up** to a millisecond). A signal interrupt
        /// returns `Ok` with zero events — callers re-derive their
        /// timeout and wait again, exactly as for a timeout.
        ///
        /// # Errors
        ///
        /// The raw `epoll_wait` failure (other than `EINTR`).
        pub fn wait(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            events.inner.clear();
            // SAFETY: `buf` is WAIT_BATCH valid, writable EpollEvents.
            let n = unsafe {
                epoll_wait(self.fd, self.buf.as_mut_ptr(), WAIT_BATCH as i32, timeout_ms(timeout))
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                return if err.kind() == io::ErrorKind::Interrupted { Ok(()) } else { Err(err) };
            }
            for ev in &self.buf[..n as usize] {
                // Copy out of the (possibly packed) FFI struct before use.
                let (bits, token) = (ev.events, ev.data);
                events
                    .inner
                    .push(Event { token, closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0 });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: `fd` is owned by this instance and closed once.
            unsafe { close(self.fd) };
        }
    }

    /// An `eventfd`-backed waker: any thread may [`WakeFd::wake`] it to
    /// make the registered-and-waiting epoll return, and the owning
    /// reactor [`WakeFd::drain`]s it before going back to sleep.
    #[derive(Debug)]
    pub struct WakeFd {
        fd: RawFd,
    }

    impl WakeFd {
        /// Create a nonblocking eventfd.
        ///
        /// # Errors
        ///
        /// The raw `eventfd` failure.
        pub fn new() -> io::Result<WakeFd> {
            // SAFETY: eventfd takes no pointers.
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(WakeFd { fd })
        }

        /// Make the fd readable, waking a reactor blocked on it.
        /// Wakes coalesce (the counter saturates); errors are ignored —
        /// there is nothing a waker-side caller could do about them.
        pub fn wake(&self) {
            let one = 1u64.to_ne_bytes();
            // SAFETY: `one` is 8 valid bytes for the duration of the call.
            unsafe { write(self.fd, one.as_ptr(), one.len()) };
        }

        /// Consume pending wakes so the next `epoll_wait` blocks again.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: `buf` is 8 valid, writable bytes.
            unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
        }
    }

    impl AsRawFd for WakeFd {
        fn as_raw_fd(&self) -> RawFd {
            self.fd
        }
    }

    impl Drop for WakeFd {
        fn drop(&mut self) {
            // SAFETY: `fd` is owned by this instance and closed once.
            unsafe { close(self.fd) };
        }
    }

    /// A one-shot `CLOCK_MONOTONIC` timerfd, registered with an
    /// [`Epoll`] so its expiry wakes the reactor at **nanosecond**
    /// granularity — where `epoll_wait`'s own timeout argument rounds up
    /// to whole milliseconds (`timeout_ms`), the reactor arms this with
    /// the exact next session deadline and waits indefinitely.
    ///
    /// `timerfd_settime` replaces any previous setting and clears the
    /// expiration count, so re-arming every loop iteration never leaves
    /// a stale readable state behind.
    #[derive(Debug)]
    pub struct TimerFd {
        fd: RawFd,
    }

    impl TimerFd {
        /// Create a nonblocking monotonic timerfd.
        ///
        /// # Errors
        ///
        /// The raw `timerfd_create` failure.
        pub fn new() -> io::Result<TimerFd> {
            // SAFETY: timerfd_create takes no pointers.
            let fd = unsafe { timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(TimerFd { fd })
        }

        /// Arm as a one-shot timer firing `after` from now, replacing
        /// any previous setting. A zero duration is clamped to one
        /// nanosecond so the timer still fires (a zero `it_value`
        /// would *disarm* instead).
        ///
        /// # Errors
        ///
        /// The raw `timerfd_settime` failure.
        pub fn arm(&self, after: Duration) -> io::Result<()> {
            let nanos = after.subsec_nanos() as i64;
            let spec = Timespec {
                tv_sec: after.as_secs().min(i64::MAX as u64) as i64,
                tv_nsec: if after.is_zero() { 1 } else { nanos },
            };
            self.settime(spec)
        }

        /// Disarm: no expiry until the next [`TimerFd::arm`]. Also
        /// clears any pending expiration count.
        ///
        /// # Errors
        ///
        /// The raw `timerfd_settime` failure.
        pub fn disarm(&self) -> io::Result<()> {
            self.settime(Timespec { tv_sec: 0, tv_nsec: 0 })
        }

        fn settime(&self, value: Timespec) -> io::Result<()> {
            let spec =
                Itimerspec { it_interval: Timespec { tv_sec: 0, tv_nsec: 0 }, it_value: value };
            // SAFETY: `spec` outlives the call; the kernel copies it.
            let rc = unsafe { timerfd_settime(self.fd, 0, &spec, std::ptr::null_mut()) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Consume the pending expiration count so a level-triggered
        /// registration blocks again.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: `buf` is 8 valid, writable bytes.
            unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
        }
    }

    impl AsRawFd for TimerFd {
        fn as_raw_fd(&self) -> RawFd {
            self.fd
        }
    }

    impl Drop for TimerFd {
        fn drop(&mut self) {
            // SAFETY: `fd` is owned by this instance and closed once.
            unsafe { close(self.fd) };
        }
    }

    /// Close a raw descriptor out from under its owner. **Fault
    /// injection only**: after this, the owner's next syscall on the
    /// descriptor fails with `EBADF` — which is exactly what the
    /// graceful-degradation tests in `forbid(unsafe_code)` crates need
    /// to provoke without unsafe of their own.
    pub fn close_fd(fd: RawFd) {
        // SAFETY: the caller asserts nothing else will reuse `fd`; tests
        // sabotage descriptors they own and then drop.
        unsafe { close(fd) };
    }
}

#[cfg(not(target_os = "linux"))]
mod stub {
    use super::Events;
    use std::io;
    use std::os::fd::{AsRawFd, RawFd};
    use std::time::Duration;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "epoll requires Linux"))
    }

    /// Unsupported on this platform: every constructor fails.
    #[derive(Debug)]
    pub struct Epoll {}

    impl Epoll {
        /// Always fails with [`io::ErrorKind::Unsupported`].
        pub fn new() -> io::Result<Epoll> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn add(&self, _fd: &impl AsRawFd, _token: u64) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn delete(&self, _fd: &impl AsRawFd) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn wait(&mut self, _events: &mut Events, _timeout: Option<Duration>) -> io::Result<()> {
            unsupported()
        }
    }

    /// Unsupported on this platform: every constructor fails.
    #[derive(Debug)]
    pub struct WakeFd {}

    impl WakeFd {
        /// Always fails with [`io::ErrorKind::Unsupported`].
        pub fn new() -> io::Result<WakeFd> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn wake(&self) {}

        /// Unreachable (no instance can exist).
        pub fn drain(&self) {}
    }

    impl AsRawFd for WakeFd {
        fn as_raw_fd(&self) -> RawFd {
            -1
        }
    }

    /// Unsupported on this platform: every constructor fails.
    #[derive(Debug)]
    pub struct TimerFd {}

    impl TimerFd {
        /// Always fails with [`io::ErrorKind::Unsupported`].
        pub fn new() -> io::Result<TimerFd> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn arm(&self, _after: Duration) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn disarm(&self) -> io::Result<()> {
            unsupported()
        }

        /// Unreachable (no instance can exist).
        pub fn drain(&self) {}
    }

    impl AsRawFd for TimerFd {
        fn as_raw_fd(&self) -> RawFd {
            -1
        }
    }

    /// No-op off Linux (the fault-injection tests are Linux-only).
    pub fn close_fd(_fd: RawFd) {}
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    #[test]
    fn timeout_rounds_up_to_a_millisecond() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(1))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_micros(999))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_micros(1001))), 2);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }

    #[test]
    fn wait_times_out_with_no_events() {
        let mut ep = Epoll::new().unwrap();
        let mut events = Events::new();
        let start = Instant::now();
        ep.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(9), "the wait actually blocked");
    }

    #[test]
    fn readable_socket_surfaces_its_token() {
        let mut ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        ep.add(&rx, 7).unwrap();
        let mut events = Events::new();
        // Nothing written yet: a short wait delivers nothing.
        ep.wait(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(events.is_empty());
        tx.write_all(b"hello").unwrap();
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev: Vec<Event> = events.iter().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].token, 7);
        assert!(!ev[0].closed);
        // Level-triggered: unread bytes keep the fd ready.
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn peer_hangup_is_flagged_closed() {
        let mut ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        ep.add(&rx, 3).unwrap();
        drop(tx);
        let mut events = Events::new();
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let ev: Vec<Event> = events.iter().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].token, 3);
        assert!(ev[0].closed, "EPOLLRDHUP/EPOLLHUP surfaces as closed");
    }

    #[test]
    fn wake_fd_wakes_and_drains() {
        let mut ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(&wake, 0).unwrap();
        let mut events = Events::new();
        ep.wait(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(events.is_empty(), "unwoken wake fd is not readable");
        wake.wake();
        wake.wake(); // wakes coalesce
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events.iter().next().unwrap().token, 0);
        wake.drain();
        ep.wait(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(events.is_empty(), "drained wake fd blocks again");
    }

    #[test]
    fn wake_from_another_thread_interrupts_an_indefinite_wait() {
        let mut ep = Epoll::new().unwrap();
        let wake = std::sync::Arc::new(WakeFd::new().unwrap());
        ep.add(&*wake, 9).unwrap();
        let waker = std::sync::Arc::clone(&wake);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Events::new();
        ep.wait(&mut events, None).unwrap();
        assert_eq!(events.iter().next().unwrap().token, 9);
        t.join().unwrap();
    }

    #[test]
    fn timerfd_fires_at_sub_millisecond_granularity() {
        let mut ep = Epoll::new().unwrap();
        let timer = TimerFd::new().unwrap();
        ep.add(&timer, 5).unwrap();
        let mut events = Events::new();
        // Unarmed: nothing fires.
        ep.wait(&mut events, Some(Duration::from_millis(5))).unwrap();
        assert!(events.is_empty());
        // Armed at 300µs: an indefinite wait returns well under the
        // 1ms floor the epoll_wait timeout argument would impose.
        let start = Instant::now();
        timer.arm(Duration::from_micros(300)).unwrap();
        ep.wait(&mut events, None).unwrap();
        assert_eq!(events.iter().next().unwrap().token, 5);
        assert!(start.elapsed() >= Duration::from_micros(300), "the timer actually waited");
        // Drained: the level-triggered interest blocks again.
        timer.drain();
        ep.wait(&mut events, Some(Duration::from_millis(2))).unwrap();
        assert!(events.is_empty(), "drained timer is not readable");
        // Re-arming replaces the old setting and clears stale expiry.
        timer.arm(Duration::from_micros(100)).unwrap();
        std::thread::sleep(Duration::from_millis(2)); // expire, undrained
        timer.arm(Duration::from_secs(3600)).unwrap();
        ep.wait(&mut events, Some(Duration::from_millis(2))).unwrap();
        assert!(events.is_empty(), "settime cleared the stale expiration");
        // A zero-duration arm still fires (clamped to 1ns, not disarm).
        timer.arm(Duration::ZERO).unwrap();
        ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        // Disarm clears a pending expiry too.
        timer.disarm().unwrap();
        ep.wait(&mut events, Some(Duration::from_millis(2))).unwrap();
        assert!(events.is_empty(), "disarmed timer is quiet");
    }

    #[test]
    fn closed_fd_registration_fails_instead_of_panicking() {
        let ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        close_fd(listener.as_raw_fd());
        let err = ep.add(&listener, 1).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(9), "EBADF from a sabotaged descriptor");
        std::mem::forget(listener); // its fd is already closed
    }
}
