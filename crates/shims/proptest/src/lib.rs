//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Differences from upstream, by design (see `crates/shims/README.md`):
//!
//! * test cases are **sampled deterministically** from a seed derived
//!   from the test's name — reruns explore the same inputs;
//! * there is **no shrinking**: a failure reports the sampled inputs
//!   verbatim;
//! * only the strategy combinators the workspace uses exist: integer
//!   ranges, [`strategy::Just`], `prop_map`, tuples, [`collection::vec`],
//!   [`arbitrary::any`], [`sample::Index`] and the [`prop_oneof!`] macro.
//!
//! The macro surface (`proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`) matches upstream closely enough that the property
//! tests compile unchanged against either implementation.

#![forbid(unsafe_code)]

/// The deterministic generator behind every sampled value.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `seed` (SplitMix64).
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// One raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        self.next_u64() % bound
    }
}

/// Test configuration and the per-case error type.
pub mod test_runner {
    /// How many cases to run per property.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of sampled cases.
        pub cases: u32,
        /// Accepted for upstream compatibility; this shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64, max_shrink_iters: 0 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case's inputs were rejected by `prop_assume!`.
        Reject,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    /// A stable per-test seed derived from the test's name, so every run
    /// explores the same inputs.
    pub fn seed_for(name: &str) -> u64 {
        // FNV-1a.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Strategies: value generators composable with `prop_map` and friends.
pub mod strategy {
    use crate::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every sampled value with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),+) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;
                    fn sample(&self, rng: &mut TestRng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        self.start + rng.below((self.end - self.start) as u64) as $ty
                    }
                }
                impl Strategy for RangeInclusive<$ty> {
                    type Value = $ty;
                    fn sample(&self, rng: &mut TestRng) -> $ty {
                        let (s, e) = (*self.start(), *self.end());
                        assert!(s <= e, "empty range strategy");
                        let span = (e - s) as u128 + 1;
                        s + ((rng.next_u64() as u128 % span) as $ty)
                    }
                }
            )+
        };
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    #[allow(non_snake_case)]
                    fn sample(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.sample(rng),)+)
                    }
                }
            )+
        };
    }
    impl_tuple_strategy!(
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
        (A, B, C, D, E, F, G),
        (A, B, C, D, E, F, G, H)
    );

    /// A sampler erased to a closure — the element type of
    /// [`OneOf`], produced by [`boxed`].
    pub type BoxedSample<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Erase a strategy to a boxed sampling closure (used by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedSample<S::Value> {
        Box::new(move |rng| s.sample(rng))
    }

    /// A weighted choice among erased strategies.
    pub struct OneOf<V> {
        arms: Vec<(u32, BoxedSample<V>)>,
        total: u64,
    }

    impl<V> std::fmt::Debug for OneOf<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("OneOf").field("arms", &self.arms.len()).finish()
        }
    }

    impl<V> OneOf<V> {
        /// Build from `(weight, sampler)` arms.
        pub fn new(arms: Vec<(u32, BoxedSample<V>)>) -> OneOf<V> {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            OneOf { arms, total }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, sampler) in &self.arms {
                if pick < *w as u64 {
                    return sampler(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum to total")
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The result of [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `Arbitrary` and the `any::<T>()` entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Sample a canonical value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),+) => {
            $(impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            })+
        };
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// The result of [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Index sampling (`prop::sample::Index`).
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::TestRng;

    /// A position into a collection whose size is only known later.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`, like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// A weighted (or unweighted) choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn` samples its `name in strategy`
/// parameters and runs its body for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::new($crate::test_runner::seed_for(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        Ok(())
                    })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg,
                            inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps_compose(
            x in 0u64..10,
            pair in (0u8..3, any::<bool>()),
            v in prop::collection::vec(0usize..5, 1..4),
            pick in any::<prop::sample::Index>(),
            stepped in prop_oneof![2 => Just(100u64), 1 => (0u64..10).prop_map(|n| n * 2)],
        ) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 3);
            prop_assert!(!v.is_empty() && v.len() < 4 && v.iter().all(|&e| e < 5));
            prop_assert!(pick.index(v.len()) < v.len());
            prop_assert!(stepped == 100 || (stepped < 20 && stepped % 2 == 0));
        }

        #[test]
        fn assume_rejects_without_failing(flag in any::<bool>()) {
            prop_assume!(flag);
            prop_assert!(flag);
        }
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(crate::test_runner::seed_for("abc"), crate::test_runner::seed_for("abc"));
        assert_ne!(crate::test_runner::seed_for("abc"), crate::test_runner::seed_for("abd"));
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failures_report_inputs() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0u64..3) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
