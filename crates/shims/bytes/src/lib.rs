//! Offline stand-in for `bytes::Bytes`: an immutable, cheaply-cloneable
//! byte buffer backed by `Arc<[u8]>`, with zero-copy subrange views.
//! See `crates/shims/README.md`.
//!
//! A [`Bytes`] is a *window* `(offset, len)` into a shared allocation.
//! [`Bytes::slice`] and [`Bytes::slice_ref`] narrow the window without
//! touching the bytes — the child shares the parent's `Arc`, which is
//! what lets `lucky-wire` decode a whole batch of values out of one
//! received frame payload without copying any of them. Equality,
//! ordering and hashing see only the window's contents, never the
//! backing allocation, so two windows over different allocations with
//! the same bytes are equal and hash identically.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer (a window into a shared
/// allocation).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_arc(Arc::from(data))
    }

    fn from_arc(data: Arc<[u8]>) -> Bytes {
        let len = data.len();
        Bytes { data, off: 0, len }
    }

    /// Number of bytes in the window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy subrange view: the returned `Bytes` shares this
    /// buffer's allocation and merely narrows the window. O(1), no
    /// bytes are moved or copied.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted, mirroring
    /// upstream `bytes`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n.checked_add(1).expect("slice start overflows"),
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n.checked_add(1).expect("slice end overflows"),
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end, "slice start {start} > end {end}");
        assert!(end <= self.len, "slice end {end} out of bounds (len {})", self.len);
        Bytes { data: Arc::clone(&self.data), off: self.off + start, len: end - start }
    }

    /// A zero-copy view of `subset`, which must lie inside this
    /// buffer's window (compared by address, as in upstream `bytes`).
    ///
    /// # Panics
    ///
    /// Panics if `subset` is not contained in `self`.
    pub fn slice_ref(&self, subset: &[u8]) -> Bytes {
        if subset.is_empty() {
            return Bytes::new();
        }
        let window = self.as_ref().as_ptr() as usize;
        let sub = subset.as_ptr() as usize;
        assert!(
            sub >= window && sub + subset.len() <= window + self.len,
            "slice_ref subset is not inside the buffer"
        );
        let start = sub - window;
        self.slice(start..start + subset.len())
    }

    /// `true` iff `self` and `other` are windows over the **same
    /// allocation** — the pointer-identity hook the zero-copy tests use
    /// to assert that slicing never copies (`Arc::ptr_eq` on the
    /// backing buffers).
    pub fn shares_allocation(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::from_arc(Arc::from(&[][..]))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:?}", self.as_ref())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_arc(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;
    use proptest::prelude::*;

    #[test]
    fn round_trip_and_cheap_clone() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(b.shares_allocation(&c));
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Bytes::copy_from_slice(&[1, 2]) < Bytes::copy_from_slice(&[2]));
        let v: Bytes = vec![9u8].into();
        assert_eq!(v.as_ref(), &[9]);
    }

    #[test]
    fn from_str_copies_the_utf8_bytes() {
        let b = Bytes::from("lucky");
        assert_eq!(b.as_ref(), b"lucky");
    }

    #[test]
    fn slice_forms_are_window_narrowing() {
        let b = Bytes::copy_from_slice(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(b.slice(1..4).as_ref(), &[1, 2, 3]);
        assert_eq!(b.slice(..2).as_ref(), &[0, 1]);
        assert_eq!(b.slice(4..).as_ref(), &[4, 5]);
        assert_eq!(b.slice(..).as_ref(), b.as_ref());
        assert_eq!(b.slice(1..=2).as_ref(), &[1, 2]);
        assert!(b.slice(3..3).is_empty());
        // Slices of slices compose: offsets are relative to the window.
        let mid = b.slice(1..5);
        assert_eq!(mid.slice(1..3).as_ref(), &[2, 3]);
        assert!(mid.slice(1..3).shares_allocation(&b));
    }

    #[test]
    fn slice_never_copies() {
        let b = Bytes::copy_from_slice(&[7; 32]);
        let s = b.slice(4..20);
        assert!(s.shares_allocation(&b), "slice must alias the parent allocation");
        // Equal contents in a different allocation are equal but do not alias.
        let copy = Bytes::copy_from_slice(s.as_ref());
        assert_eq!(copy, s);
        assert!(!copy.shares_allocation(&s));
    }

    #[test]
    fn slice_ref_recovers_the_window() {
        let b = Bytes::copy_from_slice(&[0, 1, 2, 3, 4, 5]);
        let sub = &b.as_ref()[2..5];
        let s = b.slice_ref(sub);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert!(s.shares_allocation(&b));
        // The empty subset is always "inside".
        assert!(b.slice_ref(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_the_end_panics() {
        let _ = Bytes::copy_from_slice(&[1, 2]).slice(1..3);
    }

    #[test]
    #[should_panic(expected = "not inside")]
    fn slice_ref_of_foreign_bytes_panics() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let foreign = [1u8, 2];
        let _ = b.slice_ref(&foreign);
    }

    #[test]
    fn eq_ord_hash_see_the_window_only() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let parent = Bytes::copy_from_slice(&[9, 1, 2, 3, 9]);
        let window = parent.slice(1..4);
        let fresh = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(window, fresh);
        assert_eq!(window.cmp(&fresh), std::cmp::Ordering::Equal);
        let hash = |b: &Bytes| {
            let mut h = DefaultHasher::new();
            b.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&window), hash(&fresh));
    }

    proptest! {
        /// Every in-bounds slice aliases the parent allocation (never
        /// copies) and shows exactly the parent's subrange.
        #[test]
        fn prop_slices_alias_and_match(
            data in proptest::collection::vec(any::<u8>(), 0..64),
            a in 0usize..80,
            b in 0usize..80,
        ) {
            let parent = Bytes::copy_from_slice(&data);
            let (start, end) = (a.min(b) % (data.len() + 1), a.max(b) % (data.len() + 1));
            let (start, end) = (start.min(end), end);
            let s = parent.slice(start..end);
            prop_assert_eq!(s.as_ref(), &data[start..end]);
            prop_assert!(s.shares_allocation(&parent), "slice copied its bytes");
            // Re-slicing the slice still aliases the original allocation.
            if !s.is_empty() {
                let inner = s.slice(..s.len() - 1);
                prop_assert!(inner.shares_allocation(&parent));
                prop_assert_eq!(inner.as_ref(), &data[start..end - 1]);
            }
            // slice_ref roundtrips the window (empty subsets detach by
            // design, as in upstream `bytes`).
            let back = parent.slice_ref(s.as_ref());
            prop_assert_eq!(&back, &s);
            if !s.is_empty() {
                prop_assert!(back.shares_allocation(&parent));
            }
        }
    }
}
