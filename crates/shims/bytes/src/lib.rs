//! Offline stand-in for `bytes::Bytes`: an immutable, cheaply-cloneable
//! byte buffer backed by `Arc<[u8]>`. See `crates/shims/README.md`.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` iff the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:?}", &self.0)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn round_trip_and_cheap_clone() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Bytes::copy_from_slice(&[1, 2]) < Bytes::copy_from_slice(&[2]));
        let v: Bytes = vec![9u8].into();
        assert_eq!(v.as_ref(), &[9]);
    }
}
