//! Offline stand-in for the `crossbeam::channel` surface this workspace
//! uses, backed by `std::sync::mpsc` (whose `Sender` is `Clone` and whose
//! `RecvTimeoutError` variants match crossbeam's). See
//! `crates/shims/README.md`.

#![forbid(unsafe_code)]

/// Multi-producer channels (std-backed).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = channel::unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            channel::RecvTimeoutError::Timeout
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            channel::RecvTimeoutError::Disconnected
        );
    }

    #[test]
    fn try_recv_drains_without_blocking() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv().unwrap_err(), channel::TryRecvError::Empty);
        drop(tx);
        assert_eq!(rx.try_recv().unwrap_err(), channel::TryRecvError::Disconnected);
    }

    #[test]
    fn senders_clone_across_threads() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap()).join().unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
    }
}
