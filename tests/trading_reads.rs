//! Proposition 3 / Theorem 5 (Appendix A), *trading (few) reads*: with
//! `fw = t − b` and `fr = t`, the unchanged algorithm guarantees at most
//! **one** slow READ in any sequence of consecutive lucky READs —
//! regardless of how many (≤ t) servers fail.

use lucky_atomic::core::{ClusterConfig, SimCluster};
use lucky_atomic::types::{Params, ProcessId, ReaderId, ServerId, Value};

/// Run `n` consecutive lucky reads (no concurrent writes) and count the
/// slow ones.
fn slow_in_sequence(c: &mut SimCluster, reader: ReaderId, n: usize) -> usize {
    (0..n).filter(|_| !c.read(reader).fast).count()
}

#[test]
fn theorem5_at_most_one_slow_read_per_sequence() {
    for (t, b) in [(1usize, 0usize), (2, 1), (3, 1), (3, 2)] {
        let params = Params::trading_reads(t, b).unwrap();
        // Sweep every crash count up to fr = t and both write luck modes.
        for crashes in 0..=t {
            for seq_len in [1usize, 2, 4, 16] {
                let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
                let w = c.write(Value::from_u64(1));
                assert!(w.fast, "t={t} b={b}: failure-free write is fast");
                for i in 0..crashes {
                    c.crash_server(i as u16);
                }
                let slow = slow_in_sequence(&mut c, ReaderId(0), seq_len);
                assert!(
                    slow <= 1,
                    "t={t} b={b} crashes={crashes} n={seq_len}: {slow} slow reads \
                     exceed Theorem 5's bound of one"
                );
                c.check_atomicity().unwrap();
            }
        }
    }
}

#[test]
fn theorem5_worst_case_needs_the_one_slow_read() {
    // The bound is tight: with fw = t − b, a fast write reaches only
    // S − fw servers; crash t of the holders and the first lucky read
    // cannot assemble 2b + t + 1 matching pw copies — it must go slow
    // (it "finishes the fast write", App. A.1). The second read is fast.
    let (t, b) = (2usize, 1usize);
    let params = Params::trading_reads(t, b).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
    // One server misses the write (PW in transit).
    c.world_mut().hold(ProcessId::Writer, ProcessId::Server(ServerId(5)));
    let w = c.write(Value::from_u64(1));
    assert!(w.fast, "S - fw = 5 acks suffice for the fast write");
    // Crash two holders (fr = t = 2 tolerated for reads).
    c.crash_server(0);
    c.crash_server(1);
    let first = c.read(ReaderId(0));
    assert!(!first.fast, "first read must finish the fast write (slow)");
    assert_eq!(first.value.as_u64(), Some(1));
    let second = c.read(ReaderId(0));
    assert!(second.fast, "second consecutive lucky read is fast");
    let third = c.read(ReaderId(0));
    assert!(third.fast);
    c.check_atomicity().unwrap();
}

#[test]
fn fast_writes_despite_t_minus_b_failures() {
    for (t, b) in [(2usize, 1usize), (3, 1), (4, 2)] {
        let params = Params::trading_reads(t, b).unwrap();
        let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
        for i in 0..(t - b) {
            c.crash_server(i as u16);
        }
        let w = c.write(Value::from_u64(1));
        assert!(w.fast, "t={t} b={b}: write fast despite t-b = {} crashes", t - b);
        c.check_atomicity().unwrap();
    }
}

#[test]
fn sequences_interrupted_by_writes_reset_the_budget() {
    // Definition 2: a sequence is *consecutive* only without intervening
    // WRITEs. Each write may cost the next sequence one slow read again —
    // but never more than one.
    let params = Params::trading_reads(2, 1).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
    // The first write misses one server, then two holders crash: the
    // classic one-slow-read pattern.
    c.world_mut().hold(ProcessId::Writer, ProcessId::Server(ServerId(5)));
    c.write(Value::from_u64(1));
    c.world_mut().release_all_from(ProcessId::Writer);
    c.crash_server(0);
    c.crash_server(1);
    for round in 2..=5u64 {
        let slow = slow_in_sequence(&mut c, ReaderId(0), 4);
        assert!(slow <= 1, "round {round}: {slow} slow in sequence");
        // A new write starts a new sequence; with two crashes it runs
        // slow (quorum 4 < S − fw) but completes, and the budget resets.
        c.write(Value::from_u64(round));
    }
    c.check_atomicity().unwrap();
}

#[test]
fn reads_remain_correct_with_byzantine_plus_crashes_at_fr_equals_t() {
    use lucky_atomic::core::byz::ForgeValue;
    use lucky_atomic::types::{Seq, TsVal};
    let params = Params::trading_reads(2, 1).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
    c.install_byzantine(3, Box::new(ForgeValue::new(TsVal::new(Seq(88), Value::from_u64(888)))));
    c.crash_server(4); // 1 Byzantine + 1 crash = t
    for i in 1..=8u64 {
        c.write(Value::from_u64(i));
        let r = c.read(ReaderId(0));
        assert_eq!(r.value.as_u64(), Some(i));
    }
    c.check_atomicity().unwrap();
}
