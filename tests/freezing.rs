//! Theorem 2 (wait-freedom) and the freezing mechanism (§3.1).
//!
//! The hard case is a READ concurrent with an unbounded stream of WRITEs:
//! without help, server registers are overwritten faster than the reader
//! can confirm any value at `b + 1` servers. Freezing — readers signal
//! their timestamp, servers piggyback it on PW acks, the writer freezes a
//! value per READ — guarantees termination. These tests reproduce the
//! starvation pattern, verify freezing defeats it, and check the
//! mechanism's bookkeeping end to end.

use lucky_atomic::core::{ClusterConfig, ProtocolConfig, SimCluster};
use lucky_atomic::sim::Delay;
use lucky_atomic::types::{OpId, Params, ProcessId, ReaderId, ServerId, Value};

/// Build the adversarial storm cluster: reader → server links staggered
/// so every round samples non-adjacent write epochs; two servers crashed
/// so the staggered four are exactly the quorum.
fn storm_cluster(freezing: bool, cap: u32, seed: u64) -> SimCluster {
    let params = Params::new(2, 1, 1, 0).unwrap();
    let protocol = ProtocolConfig {
        freezing,
        max_read_rounds: Some(cap),
        ..ProtocolConfig::for_sync_bound(100)
    };
    let mut cfg = ClusterConfig::synchronous(params).with_protocol(protocol).with_seed(seed);
    for i in 0..params.server_count() as u16 {
        cfg.net.set_link(
            ProcessId::Reader(ReaderId(0)),
            ProcessId::Server(ServerId(i)),
            Delay::Constant(100 + 1_300 * i as u64),
        );
    }
    let mut c = SimCluster::new(cfg, 1);
    c.crash_server(4);
    c.crash_server(5);
    c
}

/// Drive the storm: closed-loop writes until the read completes or
/// `max_writes` writes have run.
fn run_storm(c: &mut SimCluster, max_writes: u64) -> (OpId, u64) {
    run_storm_from(c, max_writes, 0)
}

/// Like [`run_storm`] but writing values `base+1, base+2, …` so repeated
/// storms on one cluster keep written values distinct.
fn run_storm_from(c: &mut SimCluster, max_writes: u64, base: u64) -> (OpId, u64) {
    let read_op = c.invoke_read_at(c.now() + 2_000, ReaderId(0));
    let mut writes = 0;
    while !c.is_complete(read_op) && writes < max_writes {
        writes += 1;
        c.write(Value::from_u64(base + writes));
    }
    c.run_until_idle(5_000_000);
    (read_op, writes)
}

#[test]
fn theorem2_read_terminates_under_unbounded_writes() {
    for seed in [1u64, 7, 23] {
        let mut c = storm_cluster(true, 60, seed);
        let (read_op, writes) = run_storm(&mut c, 400);
        let rec = c.history().get(read_op).unwrap();
        assert!(
            rec.is_complete(),
            "seed {seed}: freezing must terminate the read (ran {writes} writes)"
        );
        c.check_atomicity().unwrap();
    }
}

#[test]
fn ablation_without_freezing_the_read_starves() {
    let mut c = storm_cluster(false, 25, 1);
    let (read_op, writes) = run_storm(&mut c, 400);
    let rec = c.history().get(read_op).unwrap();
    assert!(!rec.is_complete(), "without freezing the read must starve ({writes} writes ran)");
}

#[test]
fn frozen_value_satisfies_atomicity() {
    // The value returned via safeFrozen comes from a WRITE concurrent
    // with the READ (Lemma 4) — the checker accepts it and subsequent
    // reads never regress below it.
    let mut c = storm_cluster(true, 60, 3);
    let (read_op, writes) = run_storm(&mut c, 400);
    let frozen_read = c.outcome(read_op);
    let returned = frozen_read.value.as_u64().expect("a real value");
    assert!(returned >= 1 && returned <= writes);
    // Subsequent reads (quiet system now) must not return anything older.
    let next = c.read(ReaderId(0));
    assert!(next.value.as_u64().unwrap() >= returned);
    c.check_atomicity().unwrap();
}

#[test]
fn writer_freezes_at_most_one_value_per_read() {
    // Bookkeeping check via the cores directly: covered in unit tests —
    // here we verify the observable consequence: under repeated storms
    // every read terminates with exactly one value and atomicity holds
    // across multiple slow reads of the same reader.
    let mut c = storm_cluster(true, 60, 5);
    for storm in 0..3u64 {
        let (read_op, _) = run_storm_from(&mut c, 300, storm * 1_000);
        assert!(c.history().get(read_op).unwrap().is_complete());
    }
    c.check_atomicity().unwrap();
}

#[test]
fn sequential_reads_between_writes_never_need_freezing() {
    // Without contention the freezing machinery stays dormant: reads are
    // fast and no frozen slot is ever consulted (observable as rounds=1).
    let params = Params::new(2, 1, 1, 0).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
    for i in 1..=20u64 {
        c.write(Value::from_u64(i));
        let r = c.read(ReaderId(0));
        assert!(r.fast);
    }
    c.check_atomicity().unwrap();
}

#[test]
fn two_concurrent_slow_readers_both_terminate() {
    // Freezing is per-reader: two starving readers each get their own
    // frozen slot and both terminate.
    let params = Params::new(2, 1, 1, 0).unwrap();
    let protocol =
        ProtocolConfig { max_read_rounds: Some(80), ..ProtocolConfig::for_sync_bound(100) };
    let mut cfg = ClusterConfig::synchronous(params).with_protocol(protocol);
    for r in 0..2u16 {
        for i in 0..params.server_count() as u16 {
            cfg.net.set_link(
                ProcessId::Reader(ReaderId(r)),
                ProcessId::Server(ServerId(i)),
                Delay::Constant(100 + 1_300 * ((i + r) % 6) as u64),
            );
        }
    }
    let mut c = SimCluster::new(cfg, 2);
    c.crash_server(4);
    c.crash_server(5);
    let rd0 = c.invoke_read_at(c.now() + 2_000, ReaderId(0));
    let rd1 = c.invoke_read_at(c.now() + 2_500, ReaderId(1));
    let mut writes = 0u64;
    while (!c.is_complete(rd0) || !c.is_complete(rd1)) && writes < 600 {
        writes += 1;
        c.write(Value::from_u64(writes));
    }
    c.run_until_idle(8_000_000);
    assert!(c.history().get(rd0).unwrap().is_complete(), "reader 0 terminated");
    assert!(c.history().get(rd1).unwrap().is_complete(), "reader 1 terminated");
    c.check_atomicity().unwrap();
}
