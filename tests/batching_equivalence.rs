//! Differential harness for wire-message batching: batching must change
//! **nothing but the message count**.
//!
//! For all three protocol variants (atomic §3, two-round App. C, regular
//! App. D) on both runtimes:
//!
//! * the same seeded workload runs with batching disabled and enabled,
//!   and the resulting operation outcomes must be identical — on the
//!   deterministic simulator the *entire* `OpOutcome` (value, rounds,
//!   fast flag, latency, message counts) must match field for field; on
//!   the threaded runtime (where wall-clock timing is nondeterministic)
//!   the semantic fields (register, kind, value) must match and the
//!   per-register linearizability/regularity oracles must pass;
//! * with batching disabled the wire traffic is identical to the
//!   pre-batching runtime: every wire message carries exactly one
//!   protocol message and no `Batch` envelope is ever sent;
//! * batch-delivery *interleavings* — schedules in which a link's whole
//!   backlog arrives as one atomic batch — are exercised through
//!   `lucky_explore::random_walks`, which must find no atomicity
//!   violation with the batch-delivery choice enabled.

use lucky_atomic::core::{ClusterConfig, OpOutcome, ProtocolConfig, Setup, SimStore, StoreConfig};
use lucky_atomic::explore::{random_walks, ByzKind, Scenario};
use lucky_atomic::net::{NetConfig, NetStore};
use lucky_atomic::types::{
    BatchConfig, OpKind, Params, ProcessId, RegisterId, ServerId, TwoRoundParams, Value,
};
use std::time::Duration;

const REGISTERS: usize = 6;
const READERS_PER_REGISTER: usize = 2;
const ROUNDS: u64 = 3;

fn setups() -> Vec<Setup> {
    vec![
        Setup::Atomic(Params::new(2, 1, 1, 0).unwrap()),
        Setup::TwoRound(TwoRoundParams::new(2, 1, 1).unwrap()),
        Setup::Regular(Params::trading_reads(2, 1).unwrap()),
    ]
}

fn cluster_for(setup: Setup) -> ClusterConfig {
    match setup {
        Setup::Atomic(p) => ClusterConfig::synchronous(p),
        Setup::TwoRound(p) => ClusterConfig::synchronous_two_round(p),
        Setup::Regular(p) => ClusterConfig::synchronous_regular(p),
    }
}

fn value_for(reg: RegisterId, round: u64) -> u64 {
    1 + reg.0 as u64 * 1_000 + round
}

// ---------------------------------------------------------------------
// Simulator: field-for-field identical outcomes.
// ---------------------------------------------------------------------

/// The seeded workload: per round, every register's write and reads are
/// invoked before anything completes, so cross-register traffic genuinely
/// overlaps. Returns the outcomes in operation order.
fn run_sim(setup: Setup, seed: u64, batch: BatchConfig) -> (SimStore, Vec<OpOutcome>) {
    let mut store: SimStore = StoreConfig::from(cluster_for(setup))
        .registers(REGISTERS)
        .readers_per_register(READERS_PER_REGISTER)
        .with_seed(seed)
        .with_batch(batch)
        .build_sim();
    let mut ops = Vec::new();
    for round in 0..ROUNDS {
        let mut wave = Vec::new();
        for reg in RegisterId::all(REGISTERS) {
            let v = value_for(reg, round);
            wave.push(store.register(reg).invoke_write(Value::from_u64(v)));
        }
        for reg in RegisterId::all(REGISTERS) {
            for j in 0..READERS_PER_REGISTER as u16 {
                wave.push(store.register(reg).invoke_read(j));
            }
        }
        store.run_until_all_complete(&wave).expect("failure-free workload completes");
        ops.extend(wave);
    }
    let outcomes = ops.iter().map(|&op| store.outcome(op)).collect();
    (store, outcomes)
}

/// On this failure-free workload the engines send at most one message per
/// destination per step, so no batch can form and the two runs must be
/// **bit-identical** — field for field including latency, message and
/// byte counts. This is the plumbing guard: enabling batching must not
/// perturb RNG draw order, scheduling or accounting when there is nothing
/// to coalesce. Runs where batches *do* form are covered by
/// `sim_gated_backlog_releases_as_batches_and_stays_atomic` below and the
/// explore-driven walks at the bottom of this file.
#[test]
fn sim_outcomes_are_identical_with_and_without_batching() {
    for setup in setups() {
        for seed in [7, 21] {
            let (store_off, off) = run_sim(setup, seed, BatchConfig::disabled());
            let (store_on, on) = run_sim(setup, seed, BatchConfig::enabled(16));
            // Field-for-field equality: id, register, kind, value, rounds,
            // fast flag, latency, message and byte counts all match.
            assert_eq!(off, on, "batching changed a sim outcome ({setup:?}, seed {seed})");
            // Checker verdicts agree too (both must pass).
            match setup {
                Setup::Regular(_) => {
                    store_off.check_regularity().unwrap();
                    store_on.check_regularity().unwrap();
                }
                _ => {
                    store_off.check_atomicity().unwrap();
                    store_on.check_atomicity().unwrap();
                }
            }
        }
    }
}

/// A sim run in which batches genuinely form: slow-path W rounds pile up
/// behind a gated link (PW + W2 + W3 on one channel), and releasing the
/// gate with batching enabled ships the backlog as one `Batch` event —
/// verified through the world's delivery trace — while the read still
/// returns the written value and the history stays atomic. Timing
/// differs between the modes (one sampled delay instead of three), so
/// the comparison here is semantic, not field-for-field.
#[test]
fn sim_gated_backlog_releases_as_batches_and_stays_atomic() {
    let params = Params::new(1, 0, 1, 0).unwrap(); // S = 3, quorum 2
    let run = |batch: BatchConfig| {
        let mut store: SimStore = StoreConfig::synchronous(params)
            .with_protocol(ProtocolConfig::slow_only(100))
            .with_seed(5)
            .with_batch(batch)
            .build_sim();
        store.world_mut().enable_trace();
        let slow = ProcessId::Server(ServerId(2));
        store.world_mut().hold(ProcessId::Writer, slow);
        // The slow write completes on the other two servers' quorum,
        // leaving its PW, W2 and W3 stranded on the gated link.
        let w = store.register(RegisterId(0)).write(Value::from_u64(7));
        assert!(!w.fast, "slow-only protocol runs the full W schedule");
        assert_eq!(store.world().held_count(ProcessId::Writer, slow), 3);
        store.world_mut().release(ProcessId::Writer, slow);
        store.run_until_idle(10_000);
        let r = store.register(RegisterId(0)).read(0);
        assert_eq!(r.value.as_u64(), Some(7));
        store.check_atomicity().unwrap();
        let batched_deliveries =
            store.world().trace().iter().filter(|e| e.label == "BATCH").count();
        batched_deliveries
    };
    assert_eq!(run(BatchConfig::disabled()), 0, "disabled: the backlog ships one by one");
    assert!(
        run(BatchConfig::enabled(16)) > 0,
        "enabled: the released backlog travels as a Batch event"
    );
}

// ---------------------------------------------------------------------
// Threaded runtime: identical semantic outcomes, reduced wire traffic.
// ---------------------------------------------------------------------

fn net_cfg() -> NetConfig {
    NetConfig {
        min_latency: Duration::from_micros(50),
        max_latency: Duration::from_micros(200),
        seed: 3,
        timer: Duration::from_millis(5),
    }
}

/// `(reg, kind, value)` of one completed operation.
type SemanticOutcome = (RegisterId, OpKind, Option<u64>);

/// Sequential workload (each op completes before the next is submitted),
/// so the value every read returns is determined: the register's last
/// write. Returns the semantic outcome sequence and the router's
/// `(wire messages, parts, batches)` counters.
fn run_net(setup: Setup, batch: BatchConfig) -> (Vec<SemanticOutcome>, u64, u64, u64) {
    let mut store = NetStore::builder(setup, net_cfg())
        .registers(REGISTERS)
        .readers_per_register(READERS_PER_REGISTER)
        .shards(3)
        .batch(batch)
        .build();
    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).unwrap()).collect();
    let mut outcomes = Vec::new();
    for round in 0..ROUNDS {
        for h in &handles {
            let v = value_for(h.id(), round);
            let out = h.write(Value::from_u64(v)).expect("write completes");
            outcomes.push((out.reg, out.kind, out.value.as_u64()));
        }
        for h in &handles {
            for j in 0..READERS_PER_REGISTER as u16 {
                let out = h.read(j).expect("read completes");
                outcomes.push((out.reg, out.kind, out.value.as_u64()));
            }
        }
    }
    match setup {
        Setup::Regular(_) => store.check_regularity().unwrap(),
        _ => store.check_atomicity().unwrap(),
    }
    let stats = store.stats();
    store.shutdown();
    (outcomes, stats.messages, stats.parts, stats.batches_sent)
}

#[test]
fn net_outcomes_are_identical_with_and_without_batching() {
    for setup in setups() {
        let (off, off_msgs, off_parts, off_batches) = run_net(setup, BatchConfig::disabled());
        let (on, on_msgs, on_parts, _) =
            run_net(setup, BatchConfig::enabled(16).with_max_delay_micros(200));
        assert_eq!(off, on, "batching changed a net outcome ({setup:?})");
        // Disabled: the wire traffic is the pre-batching traffic — one
        // protocol message per wire message, no Batch envelope ever.
        assert_eq!(off_msgs, off_parts, "disabled batching must not coalesce ({setup:?})");
        assert_eq!(off_batches, 0, "disabled batching must send no batches ({setup:?})");
        // Enabled: coalescing can only reduce wire messages relative to
        // the protocol messages actually sent. (Exact protocol-message
        // counts are *not* compared across modes: the coalescing delay
        // can legitimately shift an op into an extra round.)
        assert!(on_msgs <= on_parts, "wire messages can never exceed protocol messages");
    }
}

#[test]
fn net_concurrent_workload_batches_reduce_wire_messages() {
    // Concurrent waves across registers: this is where coalescing pays.
    // The hard >= 2x bound is asserted by the CI smoke run
    // (`examples/batching_smoke.rs`); here we assert the direction with a
    // margin that is safe on a loaded CI machine.
    let setup = Setup::Atomic(Params::new(2, 1, 1, 0).unwrap());
    let run = |batch: BatchConfig| {
        let mut store = NetStore::builder(setup, net_cfg())
            .registers(REGISTERS)
            .readers_per_register(READERS_PER_REGISTER)
            .shards(3)
            .batch(batch)
            .build();
        let handles: Vec<_> =
            RegisterId::all(REGISTERS).map(|reg| store.register(reg).unwrap()).collect();
        let mut ops = 0u64;
        for round in 0..ROUNDS {
            let mut tickets = Vec::new();
            for h in &handles {
                tickets.push(h.invoke_write(Value::from_u64(value_for(h.id(), round))));
            }
            for h in &handles {
                for j in 0..READERS_PER_REGISTER as u16 {
                    tickets.push(h.invoke_read(j));
                }
            }
            for t in tickets {
                t.wait().expect("failure-free workload completes");
                ops += 1;
            }
        }
        store.check_atomicity().unwrap();
        let stats = store.stats();
        store.shutdown();
        (stats, ops)
    };
    let (off, off_ops) = run(BatchConfig::disabled());
    let (on, on_ops) = run(BatchConfig::enabled(16).with_max_delay_micros(300));
    assert_eq!(off_ops, on_ops);
    assert!(on.batches_sent > 0, "concurrent workload must actually form batches");
    let off_per_op = off.messages as f64 / off_ops as f64;
    let on_per_op = on.messages as f64 / on_ops as f64;
    assert!(
        on_per_op * 1.5 <= off_per_op,
        "expected >= 1.5x fewer wire messages per op, got {off_per_op:.1} -> {on_per_op:.1}"
    );
}

// ---------------------------------------------------------------------
// Schedule space: batch-delivery interleavings via lucky-explore.
// ---------------------------------------------------------------------

fn walk_budget(full: usize, debug: usize) -> usize {
    if cfg!(debug_assertions) {
        debug
    } else {
        full
    }
}

#[test]
fn random_walks_with_batched_delivery_stay_atomic() {
    // Slow-path writes stack a W-round message behind the PW still in
    // flight to a slow server, so the scheduler's batch-delivery choice
    // has real backlogs to coalesce; two readers race the writes.
    let params = Params::new(1, 1, 0, 0).unwrap();
    let scenario = Scenario::new(params)
        .with_batching(true)
        .write(Value::from_u64(1))
        .write(Value::from_u64(2))
        .reads(0, 1)
        .reads(1, 1);
    let report = random_walks(&scenario, walk_budget(10_000, 1_500), 260, 9);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.completed_runs > 0, "batched schedules still complete the workload");
}

#[test]
fn random_walks_with_batched_delivery_and_byzantine_server_stay_atomic() {
    // The same walks with a split-brain server (the proof adversary of
    // Prop. 2) plus batch-delivery choices: coalescing must not open a
    // new equivocation window.
    let params = Params::new(1, 1, 0, 0).unwrap();
    let scenario = Scenario::new(params)
        .with_batching(true)
        .write(Value::from_u64(1))
        .reads(0, 1)
        .reads(1, 1)
        .byzantine(
            1,
            ByzKind::SplitBrain(vec![
                lucky_atomic::types::ProcessId::Writer,
                lucky_atomic::types::ProcessId::Reader(lucky_atomic::types::ReaderId(0)),
            ]),
        );
    let report = random_walks(&scenario, walk_budget(10_000, 1_500), 260, 10);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.completed_runs > 0);
}
