//! Register isolation: interleaved operations on `N` independent
//! registers of one store yield `N` independently linearizable histories.
//!
//! The property is checked on both runtimes (the deterministic `SimStore`
//! and the threaded `NetStore`), in all three protocol variants (atomic
//! §3, two-round App. C, regular App. D), and under the nastiest
//! tolerated fault mix: one crashed server plus one Byzantine server
//! forging the same fabricated pair into *every* register.
//!
//! "Independently linearizable" is decided by `lucky-checker`: the store
//! history is partitioned per register and each partition must satisfy
//! the per-register correctness conditions (atomicity, or regularity for
//! the App. D variant). Cross-register leaks surface as per-register
//! phantom values; ordering bugs as stale reads or new/old inversions.
//! On top of the oracle, the test asserts the read-domain property
//! directly: every read of register `x` returns `⊥` or a value written
//! to `x`.

use lucky_atomic::core::byz::{ForgeValue, MangleBatch};
use lucky_atomic::core::runtime::ServerCore;
use lucky_atomic::core::{OpOutcome, Setup, SimStore, StoreConfig};
use lucky_atomic::net::{NetConfig, NetStore};
use lucky_atomic::types::{
    BatchConfig, OpKind, Params, RegisterId, Seq, TsVal, TwoRoundParams, Value,
};
use std::collections::BTreeMap;
use std::time::Duration;

const REGISTERS: usize = 8;
const READERS_PER_REGISTER: usize = 2;
const ROUNDS: u64 = 4;

/// Unique per-register value stream: register `x`'s round-`k` write.
fn value_for(reg: RegisterId, round: u64) -> u64 {
    1 + reg.0 as u64 * 1_000 + round
}

/// The forged pair the Byzantine server plants in every register.
fn forged_pair() -> TsVal {
    TsVal::new(Seq(5_000), Value::from_u64(666_666))
}

/// The three variant setups under test, with `t = 2, b = 1` resilience so
/// one crash plus one Byzantine server is within the fault budget.
fn setups() -> Vec<Setup> {
    vec![
        Setup::Atomic(Params::new(2, 1, 1, 0).unwrap()),
        Setup::TwoRound(TwoRoundParams::new(2, 1, 1).unwrap()),
        Setup::Regular(Params::trading_reads(2, 1).unwrap()),
    ]
}

/// Assert the read-domain property over a batch of outcomes: reads return
/// `⊥` or a value previously written to *their own* register.
fn assert_read_domain(outcomes: &[OpOutcome], written: &BTreeMap<RegisterId, Vec<u64>>) {
    for out in outcomes {
        if out.kind != OpKind::Read || out.value.is_bot() {
            continue;
        }
        let v = out.value.as_u64().expect("test values are u64");
        assert!(
            written[&out.reg].contains(&v),
            "register {} read {v}, which was never written there",
            out.reg
        );
    }
}

/// Which Byzantine behaviour the fault mix installs at server 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Adversary {
    /// Forges the same fabricated pair into every register.
    Forge,
    /// Honest state, mangled reply batches: replays, reorders and mixes
    /// registers inside one `Batch` envelope (the batching-layer
    /// adversary — only meaningful with batching enabled).
    Mangle,
}

impl Adversary {
    fn build(self, setup: Setup) -> Box<dyn ServerCore> {
        match self {
            Adversary::Forge => Box::new(ForgeValue::new(forged_pair())),
            Adversary::Mangle => Box::new(MangleBatch::new(setup)),
        }
    }
}

fn run_sim_store(setup: Setup, seed: u64) {
    run_sim_store_with(setup, seed, BatchConfig::disabled(), Adversary::Forge);
}

fn run_sim_store_with(setup: Setup, seed: u64, batch: BatchConfig, adversary: Adversary) {
    let cluster = match setup {
        Setup::Atomic(p) => lucky_atomic::core::ClusterConfig::synchronous(p),
        Setup::TwoRound(p) => lucky_atomic::core::ClusterConfig::synchronous_two_round(p),
        Setup::Regular(p) => lucky_atomic::core::ClusterConfig::synchronous_regular(p),
    };
    let mut store: SimStore = StoreConfig::from(cluster)
        .registers(REGISTERS)
        .readers_per_register(READERS_PER_REGISTER)
        .with_seed(seed)
        .with_batch(batch)
        .build_sim();

    // Fault mix: one crashed server, one Byzantine server. Both answer
    // (or fail to answer) every register of the namespace.
    store.crash_server(0);
    store.install_byzantine(1, adversary.build(setup));

    let mut written: BTreeMap<RegisterId, Vec<u64>> = BTreeMap::new();
    let mut outcomes = Vec::new();
    for round in 0..ROUNDS {
        // Interleave: every register's write and reads are invoked before
        // anything completes, so operations on different registers are
        // genuinely concurrent in virtual time.
        let mut ops = Vec::new();
        for reg in RegisterId::all(REGISTERS) {
            let v = value_for(reg, round);
            written.entry(reg).or_default().push(v);
            ops.push(store.register(reg).invoke_write(Value::from_u64(v)));
        }
        for reg in RegisterId::all(REGISTERS) {
            for j in 0..READERS_PER_REGISTER as u16 {
                ops.push(store.register(reg).invoke_read(j));
            }
        }
        store.run_until_all_complete(&ops).expect("ops complete within the fault budget");
        outcomes.extend(ops.iter().map(|&op| store.outcome(op)));
    }

    assert_read_domain(&outcomes, &written);
    // The oracle: N independently linearizable (or regular) histories.
    let history = store.history();
    assert_eq!(history.registers().len(), REGISTERS, "every register saw traffic");
    match setup {
        Setup::Regular(_) => store.check_regularity().unwrap(),
        _ => store.check_atomicity().unwrap(),
    }
    // Each partition is non-trivial.
    for (reg, part) in history.partition_by_register() {
        assert_eq!(
            part.ops.len() as u64,
            ROUNDS * (1 + READERS_PER_REGISTER as u64),
            "register {reg} history size"
        );
    }
}

#[test]
fn sim_store_registers_are_independently_linearizable() {
    for setup in setups() {
        for seed in [7, 21] {
            run_sim_store(setup, seed);
        }
    }
}

/// The batching-layer adversary (`ByzKind::MangleBatch` in the explorer's
/// catalogue): a Byzantine server that replays stale acks, duplicates and
/// reorders fresh ones, and mixes registers inside one `Batch` envelope.
/// With batching enabled store-wide, every register must stay
/// independently linearizable (or regular) and the non-target registers
/// must keep completing operations.
#[test]
fn sim_store_survives_batch_mangling_byzantine_server() {
    for setup in setups() {
        for seed in [7, 21] {
            run_sim_store_with(setup, seed, BatchConfig::enabled(16), Adversary::Mangle);
        }
    }
}

fn run_net_store(setup: Setup) {
    run_net_store_with(setup, BatchConfig::disabled(), Adversary::Forge);
}

fn run_net_store_with(setup: Setup, batch: BatchConfig, adversary: Adversary) {
    let cfg = NetConfig {
        min_latency: Duration::from_micros(50),
        max_latency: Duration::from_micros(200),
        seed: 3,
        timer: Duration::from_millis(5),
    };
    let mut store = NetStore::builder(setup, cfg)
        .registers(REGISTERS)
        .readers_per_register(READERS_PER_REGISTER)
        .shards(4)
        .batch(batch)
        .crashed(0)
        .byzantine(1, adversary.build(setup))
        .build();

    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).unwrap()).collect();

    let mut written: BTreeMap<RegisterId, Vec<u64>> = BTreeMap::new();
    for round in 0..ROUNDS {
        // Interleave across registers: submit every write, then every
        // read, and only then wait — registers on different shard workers
        // run concurrently over the shared router and server cluster.
        let mut tickets = Vec::new();
        for h in &handles {
            let v = value_for(h.id(), round);
            written.entry(h.id()).or_default().push(v);
            tickets.push(h.invoke_write(Value::from_u64(v)));
        }
        for h in &handles {
            for j in 0..READERS_PER_REGISTER as u16 {
                tickets.push(h.invoke_read(j));
            }
        }
        for t in tickets {
            let out = t.wait().expect("ops complete within the fault budget");
            if out.kind == OpKind::Read && !out.value.is_bot() {
                let v = out.value.as_u64().unwrap();
                assert!(
                    written[&out.reg].contains(&v),
                    "register {} read {v}, which was never written there",
                    out.reg
                );
            }
        }
    }

    let history = store.history();
    assert_eq!(history.registers().len(), REGISTERS, "every register saw traffic");
    match setup {
        Setup::Regular(_) => store.check_regularity().unwrap(),
        _ => store.check_atomicity().unwrap(),
    }
    // Per-register traffic really flowed through the shared router.
    let stats = store.stats();
    for reg in RegisterId::all(REGISTERS) {
        assert!(stats.register(reg).messages > 0, "register {reg} routed no messages");
    }
    store.shutdown();
}

#[test]
fn net_store_registers_are_independently_linearizable() {
    for setup in setups() {
        run_net_store(setup);
    }
}

/// The threaded runtime under the same batch-mangling adversary, with
/// router coalescing and server ack re-batching enabled: per-register
/// linearizability holds and no register stalls.
#[test]
fn net_store_survives_batch_mangling_byzantine_server() {
    for setup in setups() {
        run_net_store_with(
            setup,
            BatchConfig::enabled(16).with_max_delay_micros(200),
            Adversary::Mangle,
        );
    }
}
