//! Propositions 5 and 6 (Appendix C): two-round WRITEs plus fast lucky
//! READs despite `fr` failures exist **iff** `S ≥ 2t + b + min(b, fr) + 1`.
//!
//! The positive direction exercises the Figs 6–8 algorithm at the exact
//! server count; the negative direction scripts the Fig. 5 run (`run4`)
//! at one server fewer and shows the checker catching the violation.

use lucky_atomic::checker::Violation;
use lucky_atomic::core::byz::{ForgeState, SplitBrain};
use lucky_atomic::core::{ClusterConfig, SimCluster};
use lucky_atomic::types::{ProcessId, ReaderId, Seq, ServerId, Time, TsVal, TwoRoundParams, Value};

fn server(i: u16) -> ProcessId {
    ProcessId::Server(ServerId(i))
}

#[test]
fn every_write_takes_exactly_two_rounds() {
    for (t, b, fr) in [(1usize, 0usize, 1usize), (1, 1, 1), (2, 1, 1), (2, 1, 2), (2, 2, 2)] {
        let params = TwoRoundParams::new(t, b, fr).unwrap();
        let mut c = SimCluster::new(ClusterConfig::synchronous_two_round(params), 1);
        for i in 1..=5u64 {
            let w = c.write(Value::from_u64(i));
            assert_eq!(
                (w.rounds, w.fast),
                (2, false),
                "t={t} b={b} fr={fr}: writes are always exactly two rounds"
            );
        }
        c.check_atomicity().unwrap();
    }
}

#[test]
fn writes_stay_two_rounds_under_t_crashes() {
    let params = TwoRoundParams::new(2, 1, 1).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous_two_round(params), 1);
    c.crash_server(0);
    c.crash_server(1);
    let w = c.write(Value::from_u64(1));
    assert_eq!(w.rounds, 2, "crashes never add write rounds in this variant");
    c.check_atomicity().unwrap();
}

#[test]
fn proposition6_lucky_reads_fast_despite_fr_failures() {
    for (t, b, fr) in [(1usize, 1usize, 1usize), (2, 1, 1), (2, 1, 2), (2, 2, 1)] {
        let params = TwoRoundParams::new(t, b, fr).unwrap();
        for crashes in 0..=fr {
            let mut c = SimCluster::new(ClusterConfig::synchronous_two_round(params), 1);
            c.write(Value::from_u64(1));
            for i in 0..crashes {
                c.crash_server(i as u16);
            }
            let r = c.read(ReaderId(0));
            assert!(r.fast, "t={t} b={b} fr={fr} crashes={crashes}: lucky read must be fast");
            assert_eq!(r.value.as_u64(), Some(1));
            c.check_atomicity().unwrap();
        }
    }
}

#[test]
fn slow_reads_write_back_in_two_rounds() {
    let params = TwoRoundParams::new(2, 1, 1).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous_two_round(params), 1);
    // Two servers miss the write entirely; crash two holders: only three
    // `w` copies remain, below the fast threshold S − t − fr = 4, so the
    // read goes slow.
    c.world_mut().hold(ProcessId::Writer, server(5));
    c.world_mut().hold(ProcessId::Writer, server(6));
    c.write(Value::from_u64(1));
    c.crash_server(0);
    c.crash_server(1);
    let r = c.read(ReaderId(0));
    assert!(!r.fast);
    assert_eq!(r.rounds, 3, "1 read round + 2 write-back rounds");
    assert_eq!(r.value.as_u64(), Some(1));
    c.check_atomicity().unwrap();
}

/// Fig. 5 `run4` analogue at `S − 1` servers: t = 1, b = 1, fr = 1 gives
/// full `S = 5`; with the shortfall we deploy 4. Blocks: `T1 = {s0}`,
/// `T2 = {s1}`, `B = {s2}` (malicious), `FB = {s3}` (malicious in run5 /
/// crash-equivalent in run2).
#[test]
fn proposition5_one_server_short_violates_atomicity() {
    let params = TwoRoundParams::with_shortfall(1, 1, 1, 1);
    assert_eq!(params.server_count(), 4);
    let mut c = SimCluster::new(ClusterConfig::synchronous_two_round(params), 2);

    // B = s2 is malicious: faithful to the writer and reader1, amnesiac
    // (forged initial state) towards reader2 — the "forges its state at
    // t2 to σ0" step of run4.
    c.install_byzantine(
        2,
        Box::new(SplitBrain::new([ProcessId::Writer, ProcessId::Reader(ReaderId(0))])),
    );

    // wr1: the writer's messages to T1 = s0 stay in transit; its round-2
    // message to FB = s3 is also lost (the writer crashes mid round 2,
    // having reached only B and T2) — run′′2's message pattern.
    c.world_mut().hold(ProcessId::Writer, server(0));
    let _wr1 = c.invoke_write(Value::from_u64(1));
    // PW goes out at ~1µs and reaches s1, s2, s3 (quorum 3 = S − t);
    // round 2 goes out at ~+200µs; gate s3 just before so round 2 reaches
    // only s1, s2; the writer then crashes waiting for the third ack.
    c.run_until(Time(150));
    c.world_mut().hold(ProcessId::Writer, server(3));
    c.run_until(Time(1_000));
    c.crash_writer_at(Time(1_001));
    c.run_until(Time(2_000));

    // rd1 by reader1: its messages to FB = s3 stay in transit; view =
    // T1 (blank), B (w = v1), T2 (w = v1) → fast(v1) holds (S−t−fr = 2).
    c.world_mut().hold(ProcessId::Reader(ReaderId(0)), server(3));
    let rd1 = c.invoke_read(ReaderId(0));
    c.run_until_complete(rd1).expect("rd1 completes fast");
    let rd1_val = c.outcome(rd1).value.clone();
    assert_eq!(rd1_val.as_u64(), Some(1), "rd1 returns the written value fast");

    // rd2 by reader2: T2's replies delayed past the experiment; quorum =
    // T1 (blank), B (forged blank), FB (pw = v1 only). No pair reaches
    // b + 1 = 2 vouchers for v1 and ⊥ is safe+highCand → rd2 returns ⊥.
    c.world_mut().hold(server(1), ProcessId::Reader(ReaderId(1)));
    let rd2 = c.invoke_read(ReaderId(1));
    c.run_until_complete(rd2).expect("rd2 completes");

    let err = c.check_atomicity().expect_err("one server short must break atomicity");
    assert!(
        err.0.iter().any(|v| matches!(v, Violation::NewOldInversion { .. })),
        "expected a new/old inversion, got: {err}"
    );
}

/// The same adversarial schedule at the full Appendix C server count
/// stays atomic: the extra server gives rd2 a second voucher for `v1`.
#[test]
fn proposition5_full_server_count_survives_the_same_attack() {
    let params = TwoRoundParams::new(1, 1, 1).unwrap();
    assert_eq!(params.server_count(), 5);
    let mut c = SimCluster::new(ClusterConfig::synchronous_two_round(params), 2);
    c.install_byzantine(
        2,
        Box::new(SplitBrain::new([ProcessId::Writer, ProcessId::Reader(ReaderId(0))])),
    );
    // Same pattern: T1 = s0 never hears the writer; s3 misses round 2.
    // The extra server s4 participates honestly.
    c.world_mut().hold(ProcessId::Writer, server(0));
    let _wr1 = c.invoke_write(Value::from_u64(1));
    c.run_until(Time(150));
    c.world_mut().hold(ProcessId::Writer, server(3));
    c.run_until(Time(1_000));
    c.crash_writer_at(Time(1_001));
    c.run_until(Time(2_000));

    c.world_mut().hold(ProcessId::Reader(ReaderId(0)), server(3));
    let rd1 = c.invoke_read(ReaderId(0));
    c.run_until_complete(rd1).expect("rd1 completes");

    c.world_mut().hold(server(1), ProcessId::Reader(ReaderId(1)));
    let rd2 = c.invoke_read(ReaderId(1));
    c.run_until_complete(rd2).expect("rd2 completes");
    c.check_atomicity().expect("full S: the same schedule stays atomic");
}

#[test]
fn forged_prewrite_alone_cannot_fool_a_reader() {
    // A single malicious server forging a pre-written pair (the σ1 trick)
    // cannot reach the b + 1 = 2 safe threshold at full S.
    let params = TwoRoundParams::new(1, 1, 1).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous_two_round(params), 1);
    c.install_byzantine(
        0,
        Box::new(ForgeState::prewritten(TsVal::new(Seq(1), Value::from_u64(666)))),
    );
    let r = c.read(ReaderId(0));
    assert!(r.value.is_bot(), "the forged value must not be returned");
    c.check_atomicity().unwrap();
}

#[test]
fn freezing_works_in_the_two_round_variant_too() {
    // Reader under a write storm with staggered sampling: terminates via
    // the frozen slot carried on the W message (Fig. 6 line 9).
    use lucky_atomic::core::ProtocolConfig;
    use lucky_atomic::sim::Delay;
    let params = TwoRoundParams::new(2, 1, 1).unwrap();
    let protocol =
        ProtocolConfig { max_read_rounds: Some(40), ..ProtocolConfig::for_sync_bound(100) };
    let mut cfg = ClusterConfig::synchronous_two_round(params).with_protocol(protocol);
    for i in 0..params.server_count() as u16 {
        cfg.net.set_link(
            ProcessId::Reader(ReaderId(0)),
            server(i),
            Delay::Constant(100 + 1_100 * i as u64),
        );
    }
    let mut c = SimCluster::new(cfg, 1);
    c.crash_server(5);
    c.crash_server(6);
    let read_op = c.invoke_read_at(Time(c.now().micros() + 1_000), ReaderId(0));
    let mut i = 0u64;
    while !c.is_complete(read_op) && i < 300 {
        i += 1;
        c.write(Value::from_u64(i));
    }
    c.run_until_idle(5_000_000);
    assert!(
        c.history().get(read_op).unwrap().is_complete(),
        "freezing lets the read finish under the storm"
    );
    c.check_atomicity().unwrap();
}
