//! Property-based adversarial testing: random workloads, network delays,
//! crash patterns and Byzantine behaviours never break the checkers'
//! invariants for correctly-configured clusters.

use lucky_atomic::core::byz::{ForgeValue, InflateTs, Mute, RandomNoise, StaleEcho};
use lucky_atomic::core::runtime::ServerCore;
use lucky_atomic::core::{ClusterConfig, SimCluster};
use lucky_atomic::sim::NetworkModel;
use lucky_atomic::types::{Params, ReaderId, Seq, TsVal, TwoRoundParams, Value};
use proptest::prelude::*;

/// A randomly chosen protocol action in a workload script.
#[derive(Clone, Debug)]
enum Step {
    Write,
    Read(u16),
    /// Overlapping write + read (contention).
    Contend(u16),
    /// Let time pass.
    Quiesce,
}

fn step_strategy(readers: u16) -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => Just(Step::Write),
        3 => (0..readers).prop_map(Step::Read),
        2 => (0..readers).prop_map(Step::Contend),
        1 => Just(Step::Quiesce),
    ]
}

/// Valid atomic parameter sets on the tight bound.
fn params_strategy() -> impl Strategy<Value = Params> {
    prop_oneof![
        Just(Params::new(1, 0, 1, 0).unwrap()),
        Just(Params::new(1, 0, 0, 1).unwrap()),
        Just(Params::new(1, 1, 0, 0).unwrap()),
        Just(Params::new(2, 1, 1, 0).unwrap()),
        Just(Params::new(2, 1, 0, 1).unwrap()),
        Just(Params::new(2, 0, 1, 1).unwrap()),
    ]
}

fn byz_strategy(seed: u64) -> impl Strategy<Value = Option<u8>> {
    // None = no Byzantine server; Some(k) = behaviour k.
    prop_oneof![
        2 => Just(None),
        1 => (0u8..5).prop_map(Some),
    ]
    .prop_map(move |x| {
        let _ = seed;
        x
    })
}

fn make_byz(kind: u8, seed: u64) -> Box<dyn ServerCore> {
    match kind {
        0 => Box::new(ForgeValue::new(TsVal::new(Seq(60), Value::from_u64(606)))),
        1 => Box::new(InflateTs::new(seed)),
        2 => Box::new(StaleEcho::new()),
        3 => Box::new(Mute::new()),
        _ => Box::new(RandomNoise::new(seed, 180)),
    }
}

fn run_script(
    params: Params,
    seed: u64,
    net_max: u64,
    crashes: usize,
    byz: Option<u8>,
    script: &[Step],
) -> SimCluster {
    let readers = 2;
    let cfg = ClusterConfig::synchronous(params)
        .with_seed(seed)
        .with_net(NetworkModel::uniform(50, net_max.max(51)));
    let mut c = SimCluster::new(cfg, readers);
    let mut budget = params.t();
    if let Some(kind) = byz {
        if params.b() > 0 && budget > 0 {
            c.install_byzantine(0, make_byz(kind, seed));
            budget -= 1;
        }
    }
    for i in 0..crashes.min(budget) {
        c.crash_server((params.server_count() - 1 - i) as u16);
    }
    let mut next_val = 1u64;
    for step in script {
        match step {
            Step::Write => {
                let v = Value::from_u64(next_val);
                next_val += 1;
                c.try_write(v).expect("write must complete (wait-freedom)");
            }
            Step::Read(r) => {
                c.try_read(ReaderId(r % 2)).expect("read must complete (wait-freedom)");
            }
            Step::Contend(r) => {
                let v = Value::from_u64(next_val);
                next_val += 1;
                let w = c.invoke_write(v);
                let rd = c.invoke_read(ReaderId(r % 2));
                c.world_mut()
                    .run_until_all_complete(&[w, rd])
                    .expect("contended ops must complete");
            }
            Step::Quiesce => c.run_for(5_000),
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// The headline safety property: any workload, any within-budget fault
    /// pattern, any synchrony level — the history is atomic.
    #[test]
    fn atomicity_holds_under_random_adversaries(
        params in params_strategy(),
        seed in 0u64..10_000,
        net_max in prop_oneof![Just(100u64), Just(500), Just(5_000)],
        crashes in 0usize..3,
        byz in byz_strategy(1),
        script in proptest::collection::vec(step_strategy(2), 1..25),
    ) {
        let c = run_script(params, seed, net_max, crashes, byz, &script);
        c.check_atomicity().map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// Failure-free synchronous runs additionally have every operation
    /// fast (Theorems 3 and 4 in their strongest form).
    #[test]
    fn failure_free_synchronous_sequential_ops_are_fast(
        params in params_strategy(),
        seed in 0u64..10_000,
        ops in 1usize..12,
    ) {
        let cfg = ClusterConfig::synchronous(params).with_seed(seed);
        let mut c = SimCluster::new(cfg, 1);
        for i in 0..ops {
            let w = c.try_write(Value::from_u64(i as u64 + 1)).unwrap();
            prop_assert!(w.fast, "{params}: write {i} not fast");
            let r = c.try_read(ReaderId(0)).unwrap();
            prop_assert!(r.fast, "{params}: read {i} not fast");
            prop_assert_eq!(r.value.as_u64(), Some(i as u64 + 1));
        }
        c.check_atomicity().map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// The two-round variant under the same random adversaries.
    #[test]
    fn two_round_variant_is_atomic_under_random_adversaries(
        seed in 0u64..10_000,
        net_max in prop_oneof![Just(100u64), Just(2_000)],
        crashes in 0usize..3,
        script in proptest::collection::vec(step_strategy(2), 1..20),
    ) {
        let params = TwoRoundParams::new(2, 1, 1).unwrap();
        let cfg = ClusterConfig::synchronous_two_round(params)
            .with_seed(seed)
            .with_net(NetworkModel::uniform(50, net_max));
        let mut c = SimCluster::new(cfg, 2);
        for i in 0..crashes.min(params.t()) {
            c.crash_server((params.server_count() - 1 - i) as u16);
        }
        let mut next_val = 1u64;
        for step in &script {
            match step {
                Step::Write | Step::Contend(_) => {
                    let v = Value::from_u64(next_val);
                    next_val += 1;
                    if let Step::Contend(r) = step {
                        let w = c.invoke_write(v);
                        let rd = c.invoke_read(ReaderId(r % 2));
                        c.world_mut().run_until_all_complete(&[w, rd]).unwrap();
                    } else {
                        c.try_write(v).unwrap();
                    }
                }
                Step::Read(r) => { c.try_read(ReaderId(r % 2)).unwrap(); }
                Step::Quiesce => c.run_for(5_000),
            }
        }
        c.check_atomicity().map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// The regular variant: regularity holds (atomicity may not).
    #[test]
    fn regular_variant_is_regular_under_random_adversaries(
        seed in 0u64..10_000,
        crashes in 0usize..3,
        byz in byz_strategy(2),
        script in proptest::collection::vec(step_strategy(2), 1..20),
    ) {
        let params = Params::trading_reads(2, 1).unwrap();
        let cfg = ClusterConfig::synchronous_regular(params).with_seed(seed);
        let mut c = SimCluster::new(cfg, 2);
        let mut budget = params.t();
        if let Some(kind) = byz {
            c.install_byzantine(0, make_byz(kind, seed));
            budget -= 1;
        }
        for i in 0..crashes.min(budget) {
            c.crash_server((params.server_count() - 1 - i) as u16);
        }
        let mut next_val = 1u64;
        for step in &script {
            match step {
                Step::Write => {
                    let v = Value::from_u64(next_val);
                    next_val += 1;
                    c.try_write(v).unwrap();
                }
                Step::Read(r) => { c.try_read(ReaderId(r % 2)).unwrap(); }
                Step::Contend(r) => {
                    let v = Value::from_u64(next_val);
                    next_val += 1;
                    let w = c.invoke_write(v);
                    let rd = c.invoke_read(ReaderId(r % 2));
                    c.world_mut().run_until_all_complete(&[w, rd]).unwrap();
                }
                Step::Quiesce => c.run_for(5_000),
            }
        }
        c.check_regularity().map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// Determinism: identical seeds and scripts yield identical histories.
    #[test]
    fn runs_are_deterministic(
        seed in 0u64..1_000,
        script in proptest::collection::vec(step_strategy(2), 1..10),
    ) {
        let params = Params::new(2, 1, 1, 0).unwrap();
        let h1 = run_script(params, seed, 3_000, 1, Some(4), &script)
            .history().clone();
        let h2 = run_script(params, seed, 3_000, 1, Some(4), &script)
            .history().clone();
        prop_assert_eq!(h1, h2);
    }
}
