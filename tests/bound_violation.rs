//! Executable reconstructions of the paper's impossibility proofs.
//!
//! * Proposition 2 (§4, Fig. 4): no optimally-resilient atomic storage has
//!   every lucky write fast despite `fw` failures *and* every lucky read
//!   fast despite `fr` failures when `fw + fr > t − b`. We instantiate the
//!   *naive generalization* of the paper's own algorithm (accepting
//!   `S − fw − fr` fast-read confirmations, which any such algorithm must)
//!   and script the adversarial schedule of runs r1–r5: the checker
//!   catches a new/old inversion. The **same schedule** against the
//!   correctly-configured algorithm stays atomic.
//!
//! * Proposition 4 (App. B): no optimally-resilient *safe* storage has
//!   fast lucky writes despite `fw > t − b` failures. Scripted analogue
//!   with a split-brain server: the checker catches a stale read.
//!
//! Block layout for t = 2, b = 1 (S = 6), matching the proof's sets:
//! `B1 = {s0}` (malicious), `B2 = {s1}` (malicious), `T1 = {s2, s3}`,
//! `Fr = {s4}`, `Fw = {s5}`.

use lucky_atomic::checker::Violation;
use lucky_atomic::core::byz::SplitBrain;
use lucky_atomic::core::{ClusterConfig, ProtocolConfig, SimCluster};
use lucky_atomic::types::{Params, ProcessId, ReaderId, ServerId, Time, Value};

#[allow(dead_code)] // named for symmetry with the proof's block layout
const B1: u16 = 0;
const B2: u16 = 1;
const T1A: u16 = 2;
const T1B: u16 = 3;
const FR: u16 = 4;
const FW: u16 = 5;

fn server(i: u16) -> ProcessId {
    ProcessId::Server(ServerId(i))
}

/// Script the Fig. 4 schedule (the run `r4` that the proof shows must
/// violate atomicity) against a cluster configured with the given
/// parameters and (optionally) the naive fast-read threshold. Returns the
/// atomicity check result.
fn run_fig4_schedule(
    params: Params,
    naive_fastpw: Option<usize>,
) -> Result<(), lucky_atomic::checker::Violations> {
    let protocol =
        ProtocolConfig { fastpw_override: naive_fastpw, ..ProtocolConfig::for_sync_bound(100) };
    let cfg = ClusterConfig::synchronous(params).with_protocol(protocol);
    let mut c = SimCluster::new(cfg, 2);

    // B2 equivocates: faithful to the writer and reader1 (r0); towards
    // reader2 (r1) it pretends it never heard from them.
    c.install_byzantine(
        B2,
        Box::new(SplitBrain::new([ProcessId::Writer, ProcessId::Reader(ReaderId(0))])),
    );

    // wr1: the writer's PW reaches B1, B2 and T1 only; the messages to Fr
    // and Fw stay in transit forever, and the writer crashes before its W
    // phase (it received only 4 = S − t acks, timer at 201µs, so it would
    // move to the W phase at 201µs — crash it at 150µs, after the PW
    // sends, before any further step).
    c.world_mut().hold(ProcessId::Writer, server(FR));
    c.world_mut().hold(ProcessId::Writer, server(FW));
    let _wr1 = c.invoke_write(Value::from_u64(1));
    c.crash_writer_at(Time(150));
    c.run_until(Time(1_000));

    // rd1 by reader1 (r0): lucky; its messages to Fr stay in transit
    // (both directions), so its round-1 view is B1, B2, T1×2 (all holding
    // ⟨1, v1⟩) plus Fw (initial).
    c.world_mut().hold(ProcessId::Reader(ReaderId(0)), server(FR));
    c.world_mut().hold(server(FR), ProcessId::Reader(ReaderId(0)));
    let rd1 = c.invoke_read(ReaderId(0));
    c.run_until(Time(3_000));

    // rd2 by reader2 (r1): T1's replies to it are delayed past the end of
    // the experiment, so its quorum is B1 (honest, pre-wrote v1),
    // B2 (equivocating: blank), Fr and Fw (honest, never saw the write).
    c.world_mut().hold(server(T1A), ProcessId::Reader(ReaderId(1)));
    c.world_mut().hold(server(T1B), ProcessId::Reader(ReaderId(1)));
    let rd2 = c.invoke_read(ReaderId(1));
    c.run_until_complete(rd2).expect("rd2 must complete");

    // rd1 must have completed too (fast, before rd2 started).
    assert!(c.is_complete(rd1), "rd1 should have completed fast at t≈201µs");
    c.check_atomicity()
}

#[test]
fn proposition2_naive_thresholds_beyond_bound_violate_atomicity() {
    // t = 2, b = 1: the bound is fw + fr ≤ 1. Inflate to fw = 1, fr = 1.
    let params = Params::new_unchecked(2, 1, 1, 1);
    assert!(!params.within_tight_bound());
    let naive = params.naive_fastpw_threshold(); // S − fw − fr = 4 < 2b+t+1
    let err = run_fig4_schedule(params, Some(naive))
        .expect_err("the Fig. 4 schedule must violate atomicity beyond the bound");
    // rd1 returned v1 (fast, from 4 = S−fw−fr confirmations); rd2 then
    // returned ⊥: a new/old inversion — condition (4) of §2.2.
    assert!(
        err.0.iter().any(|v| matches!(v, Violation::NewOldInversion { .. })),
        "expected a new/old inversion, got: {err}"
    );
}

#[test]
fn proposition2_same_schedule_is_atomic_within_the_bound() {
    // The identical adversarial schedule against the correctly-configured
    // algorithm (fw = 1, fr = 0; fastpw = 2b + t + 1 = 5): rd1 cannot
    // decide fast from 4 confirmations, writes back, and rd2 sees the
    // written-back value. Atomicity holds.
    let params = Params::new(2, 1, 1, 0).unwrap();
    run_fig4_schedule(params, None).expect("the paper's thresholds must stay atomic");
}

#[test]
fn proposition2_bound_is_exactly_the_naive_threshold_crossover() {
    // Directly characterize the crossover: within the bound the naive
    // formula is ≥ the paper constant (safe); beyond it, strictly below.
    for (t, b) in [(1usize, 0usize), (2, 1), (3, 1), (3, 2), (4, 1)] {
        for fw in 0..=t {
            for fr in 0..=(t - fw.min(t)) {
                let p = Params::new_unchecked(t, b, fw, fr.min(t));
                if p.within_tight_bound() {
                    assert!(p.naive_fastpw_threshold() >= p.fastpw_threshold());
                } else {
                    assert!(p.naive_fastpw_threshold() < p.fastpw_threshold());
                }
            }
        }
    }
}

/// Appendix B (Proposition 4): with `fw > t − b`, a *complete* fast lucky
/// write can be made invisible to a later contention-free read — a
/// safeness violation. Schedule: the r3-analogue.
#[test]
fn proposition4_fast_writes_beyond_t_minus_b_violate_safeness() {
    // Inflate fw to 2 > t − b = 1 (fr = 0). The writer then accepts
    // S − fw = 4 PW acks for a fast write.
    let params = Params::new_unchecked(2, 1, 2, 0);
    let cfg = ClusterConfig::synchronous(params);
    let mut c = SimCluster::new(cfg, 1);

    // B2 equivocates: faithful to the writer, blank towards readers.
    c.install_byzantine(B2, Box::new(SplitBrain::new([ProcessId::Writer])));

    // Fw = {s4, s5} never hear from the writer (messages in transit).
    c.world_mut().hold(ProcessId::Writer, server(FR));
    c.world_mut().hold(ProcessId::Writer, server(FW));

    // wr1 completes FAST with acks from B1, B2, T1×2 (4 = S − fw).
    let w = c.write(Value::from_u64(1));
    assert!(w.fast, "inflated fw lets the write complete in one round");

    // The read: T1's replies delayed past the experiment; quorum = B1
    // (honest, has v1), B2 (lies: blank), s4, s5 (honest, never saw v1).
    c.world_mut().hold(server(T1A), ProcessId::Reader(ReaderId(0)));
    c.world_mut().hold(server(T1B), ProcessId::Reader(ReaderId(0)));
    let r = c.read(ReaderId(0));
    assert!(r.value.is_bot(), "the completed write is invisible: read returned ⊥");

    // Safeness (and a fortiori atomicity) is violated: the read is
    // contention-free and succeeds a complete write.
    let err = c.check_safeness().expect_err("safeness must be violated");
    assert!(
        err.0.iter().any(|v| matches!(v, Violation::StaleRead { .. })),
        "expected a stale read, got: {err}"
    );
}

/// The same Appendix B schedule with the paper's `fw = t − b`: the write
/// cannot complete fast on 4 acks (needs `S − fw = 5`), goes slow, and
/// the read — although slow (its first round is inconclusive) — returns
/// the correct value once `T1`'s replies are finally released.
#[test]
fn proposition4_same_schedule_is_safe_within_the_bound() {
    let params = Params::new(2, 1, 1, 0).unwrap();
    let cfg = ClusterConfig::synchronous(params);
    let mut c = SimCluster::new(cfg, 1);
    c.install_byzantine(B2, Box::new(SplitBrain::new([ProcessId::Writer])));
    c.world_mut().hold(ProcessId::Writer, server(FR));
    c.world_mut().hold(ProcessId::Writer, server(FW));

    let w = c.write(Value::from_u64(1));
    assert!(!w.fast, "4 acks < S − fw = 5: the write must go slow");
    assert_eq!(w.rounds, 3);

    // Delay T1 to the reader initially; release after 5ms.
    c.world_mut().hold(server(T1A), ProcessId::Reader(ReaderId(0)));
    c.world_mut().hold(server(T1B), ProcessId::Reader(ReaderId(0)));
    let rd = c.invoke_read(ReaderId(0));
    c.run_until(Time(c.now().micros() + 5_000));
    assert!(!c.is_complete(rd), "without T1 the read cannot decide safely");
    c.world_mut().release(server(T1A), ProcessId::Reader(ReaderId(0)));
    c.world_mut().release(server(T1B), ProcessId::Reader(ReaderId(0)));
    let r = c.run_until_complete(rd).expect("read completes once T1 answers");
    assert_eq!(r.value.as_u64(), Some(1));
    c.check_atomicity().unwrap();
    c.check_safeness().unwrap();
}

/// Randomized adversarial search on both sides of the bound: across many
/// seeds, Byzantine forgers + crash patterns + asynchrony never break the
/// correctly-configured algorithm.
#[test]
fn randomized_adversary_never_breaks_correct_configs() {
    use lucky_atomic::core::byz::{ForgeValue, InflateTs, RandomNoise};
    use lucky_atomic::types::{Seq, TsVal};
    for seed in 0..30u64 {
        let params = Params::new(2, 1, 1, 0).unwrap();
        let mut c = SimCluster::new(ClusterConfig::asynchronous(params).with_seed(seed), 2);
        match seed % 3 {
            0 => c.install_byzantine(
                (seed % 6) as u16,
                Box::new(ForgeValue::new(TsVal::new(Seq(77), Value::from_u64(777)))),
            ),
            1 => c.install_byzantine((seed % 6) as u16, Box::new(InflateTs::new(seed))),
            _ => c.install_byzantine((seed % 6) as u16, Box::new(RandomNoise::new(seed, 200))),
        }
        // One crash on top (within t = 2 together with the Byzantine).
        c.crash_server(((seed + 1) % 6) as u16);
        for i in 1..=6u64 {
            c.write(Value::from_u64(i));
            c.read(ReaderId((i % 2) as u16));
        }
        c.check_atomicity().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
