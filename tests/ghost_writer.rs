//! Theorem 13 (Appendix E), "contending with the ghost": if the writer
//! crashes during an incomplete WRITE, every reader has at most **three**
//! slow synchronous READs before returning to fast operation.

use lucky_atomic::core::{ClusterConfig, SimCluster};
use lucky_atomic::types::{Params, ProcessId, ReaderId, ServerId, Time, Value};

fn server(i: u16) -> ProcessId {
    ProcessId::Server(ServerId(i))
}

/// Crash the writer mid-WRITE such that the PW message reaches only
/// `pw_reach` servers (the rest stay in transit), after a previous fully
/// completed write of `v1`. Returns the cluster, ready for reads.
fn ghost_cluster(params: Params, pw_reach: usize, seed: u64) -> SimCluster {
    let mut c = SimCluster::new(ClusterConfig::synchronous(params).with_seed(seed), 2);
    // A complete first write so the register is non-empty.
    c.write(Value::from_u64(1));
    // The ghost write: PW reaches only the first `pw_reach` servers.
    for i in pw_reach..params.server_count() {
        c.world_mut().hold(ProcessId::Writer, server(i as u16));
    }
    let _ghost = c.invoke_write(Value::from_u64(2));
    // Crash after the PW sends (5µs in) but before anything else.
    let crash_at = c.now() + 5;
    c.crash_writer_at(Time(crash_at.micros()));
    c.run_for(2_000);
    c
}

fn count_slow_reads(c: &mut SimCluster, reader: ReaderId, n: usize) -> usize {
    let mut slow = 0;
    for _ in 0..n {
        let r = c.read(reader);
        if !r.fast {
            slow += 1;
        }
    }
    slow
}

#[test]
fn at_most_three_slow_reads_after_pw_phase_crash() {
    let params = Params::new(2, 1, 1, 0).unwrap();
    for pw_reach in 0..=params.server_count() {
        let mut c = ghost_cluster(params, pw_reach, 7);
        let slow = count_slow_reads(&mut c, ReaderId(0), 8);
        assert!(slow <= 3, "pw_reach={pw_reach}: {slow} slow reads exceed Theorem 13's bound of 3");
        c.check_atomicity().unwrap();
    }
}

#[test]
fn bound_holds_per_reader_not_globally() {
    // Each reader independently gets at most 3 slow reads.
    let params = Params::new(2, 1, 1, 0).unwrap();
    let mut c = ghost_cluster(params, 3, 9);
    let slow0 = count_slow_reads(&mut c, ReaderId(0), 6);
    let slow1 = count_slow_reads(&mut c, ReaderId(1), 6);
    assert!(slow0 <= 3, "reader 0: {slow0} slow reads");
    assert!(slow1 <= 3, "reader 1: {slow1} slow reads");
    c.check_atomicity().unwrap();
}

#[test]
fn crash_during_w_phase_also_recovers() {
    // The writer goes slow (a held PW denies it the fast quorum), sends
    // W round 2, and crashes before round 3.
    let params = Params::new(2, 1, 1, 0).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous(params), 2);
    c.write(Value::from_u64(1));
    // Hold two PW links: only 4 acks (= quorum < S − fw), slow path.
    c.world_mut().hold(ProcessId::Writer, server(4));
    c.world_mut().hold(ProcessId::Writer, server(5));
    let _ghost = c.invoke_write(Value::from_u64(2));
    // Timer expires at +201; W round 2 goes out then. Crash at +260:
    // round 2 delivered to the un-held servers, round 3 never sent.
    let crash_at = c.now() + 260;
    c.crash_writer_at(Time(crash_at.micros()));
    c.run_for(2_000);

    let slow = count_slow_reads(&mut c, ReaderId(0), 8);
    assert!(slow <= 3, "{slow} slow reads after W-phase crash");
    // The ghost value v2 was written back by some slow read (it reached
    // pw at a quorum): later reads must all see v2, not v1.
    let r = c.read(ReaderId(1));
    assert_eq!(r.value.as_u64(), Some(2));
    c.check_atomicity().unwrap();
}

#[test]
fn ghost_value_read_consistently_across_readers() {
    // Whatever a first reader rules (adopt or discard the ghost value),
    // all subsequent reads agree — no new/old inversion.
    let params = Params::new(2, 1, 1, 0).unwrap();
    for pw_reach in [1, 2, 3, 4, 5] {
        let mut c = ghost_cluster(params, pw_reach, 11);
        let first = c.read(ReaderId(0)).value;
        for k in 0..4 {
            let again = c.read(ReaderId((k % 2) as u16)).value;
            assert_eq!(again, first, "pw_reach={pw_reach}");
        }
        c.check_atomicity().unwrap();
    }
}

#[test]
fn fast_operation_resumes_after_recovery() {
    // Once a slow read has written the ghost's resolution back, every
    // later synchronous read is fast again — the system self-heals.
    let params = Params::new(2, 1, 1, 0).unwrap();
    let mut c = ghost_cluster(params, 4, 13);
    let _ = c.read(ReaderId(0)); // possibly slow
    for _ in 0..5 {
        let r = c.read(ReaderId(0));
        assert!(r.fast, "reads must be fast again after recovery");
    }
    c.check_atomicity().unwrap();
}
