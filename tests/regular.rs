//! Proposition 7 (Appendix D): the regular variant gives fast lucky
//! WRITEs despite `t − b` failures, fast lucky READs despite `t`
//! failures, and tolerates arbitrarily malicious readers — at the price
//! of regularity instead of atomicity.

use lucky_atomic::checker::Violation;
use lucky_atomic::core::{ClusterConfig, SimCluster};
use lucky_atomic::types::{
    Message, Params, ProcessId, ReadSeq, ReaderId, RegisterId, Seq, ServerId, Tag, TsVal, Value,
    WriteMsg,
};

fn server(i: u16) -> ProcessId {
    ProcessId::Server(ServerId(i))
}

#[test]
fn fast_writes_despite_t_minus_b_crashes() {
    for (t, b) in [(1usize, 0usize), (2, 1), (3, 1), (3, 2)] {
        let params = Params::trading_reads(t, b).unwrap();
        let mut c = SimCluster::new(ClusterConfig::synchronous_regular(params), 1);
        for i in 0..(t - b) {
            c.crash_server(i as u16);
        }
        let w = c.write(Value::from_u64(1));
        assert!(w.fast, "t={t} b={b}: regular write fast despite t-b crashes");
        c.check_regularity().unwrap();
    }
}

#[test]
fn fast_reads_despite_t_crashes() {
    for (t, b) in [(1usize, 0usize), (2, 1), (3, 1)] {
        let params = Params::trading_reads(t, b).unwrap();
        for crashes in 0..=t {
            let mut c = SimCluster::new(ClusterConfig::synchronous_regular(params), 1);
            let w = c.write(Value::from_u64(1));
            assert!(w.fast);
            for i in 0..crashes {
                c.crash_server(i as u16);
            }
            let r = c.read(ReaderId(0));
            assert!(
                r.fast,
                "t={t} b={b} crashes={crashes}: regular lucky reads are fast up to fr = t"
            );
            assert_eq!(r.value.as_u64(), Some(1));
            c.check_regularity().unwrap();
        }
    }
}

#[test]
fn slow_writes_take_two_rounds() {
    let params = Params::trading_reads(2, 1).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous_regular(params), 1);
    // Crash beyond fw = t − b = 1: slow path, but only one W round.
    c.crash_server(0);
    c.crash_server(1);
    let w = c.write(Value::from_u64(1));
    assert_eq!((w.rounds, w.fast), (2, false));
    let r = c.read(ReaderId(0));
    assert_eq!(r.value.as_u64(), Some(1));
    c.check_regularity().unwrap();
}

/// A malicious reader floods the servers with a forged write-back
/// (value never written by the writer, high timestamp). §5 shows this
/// corrupts the atomic variant; Appendix D's variant ignores reader
/// write-backs, so honest readers are unharmed.
fn poison_with_forged_writeback(c: &mut SimCluster) {
    let forged = TsVal::new(Seq(40), Value::from_u64(666));
    let evil_reader = ProcessId::Reader(ReaderId(9)); // not a real process
    for round in 1..=3u8 {
        for i in 0..c.server_count() as u16 {
            c.world_mut().send_as(
                evil_reader,
                server(i),
                Message::Write(WriteMsg {
                    reg: RegisterId::DEFAULT,
                    round,
                    tag: Tag::WriteBack(ReadSeq(1)),
                    c: forged.clone(),
                    frozen: vec![],
                }),
            );
        }
    }
    c.run_for(1_000);
}

#[test]
fn malicious_reader_corrupts_the_atomic_variant() {
    // Control experiment: the §3 algorithm trusts reader write-backs, so
    // a malicious reader can plant a phantom value (the problem §5 states
    // has no known optimally-resilient fix without authentication).
    let params = Params::new(2, 1, 1, 0).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
    c.write(Value::from_u64(1));
    poison_with_forged_writeback(&mut c);
    let r = c.read(ReaderId(0));
    assert_eq!(r.value.as_u64(), Some(666), "the forged value wins");
    let err = c.check_atomicity().expect_err("atomicity must be violated");
    assert!(err.0.iter().any(|v| matches!(v, Violation::PhantomValue { .. })));
}

#[test]
fn malicious_reader_is_harmless_in_the_regular_variant() {
    let params = Params::trading_reads(2, 1).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous_regular(params), 1);
    c.write(Value::from_u64(1));
    poison_with_forged_writeback(&mut c);
    let r = c.read(ReaderId(0));
    assert_eq!(r.value.as_u64(), Some(1), "forged write-backs are ignored");
    for i in 2..=6u64 {
        c.write(Value::from_u64(i));
        poison_with_forged_writeback(&mut c);
        let r = c.read(ReaderId(0));
        assert_eq!(r.value.as_u64(), Some(i));
    }
    c.check_regularity().unwrap();
}

#[test]
fn regularity_allows_new_old_inversion_but_never_phantoms() {
    // Without write-backs, two readers may disagree transiently under
    // contention (new/old inversion) — permitted by regularity — but
    // every returned value is genuinely written and never older than the
    // last complete write.
    let params = Params::trading_reads(2, 1).unwrap();
    for seed in 0..20u64 {
        let mut c = SimCluster::new(ClusterConfig::synchronous_regular(params).with_seed(seed), 2);
        c.write(Value::from_u64(1));
        for i in 2..=8u64 {
            let w = c.invoke_write(Value::from_u64(i));
            let r0 = c.invoke_read(ReaderId(0));
            let r1 = c.invoke_read(ReaderId(1));
            c.world_mut().run_until_all_complete(&[w, r0, r1]).unwrap();
        }
        c.check_regularity().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn byzantine_servers_still_handled() {
    use lucky_atomic::core::byz::{ForgeValue, InflateTs};
    let params = Params::trading_reads(2, 1).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous_regular(params), 1);
    c.install_byzantine(2, Box::new(ForgeValue::new(TsVal::new(Seq(30), Value::from_u64(333)))));
    for i in 1..=5u64 {
        c.write(Value::from_u64(i));
        assert_eq!(c.read(ReaderId(0)).value.as_u64(), Some(i));
    }
    let mut c = SimCluster::new(ClusterConfig::synchronous_regular(params), 1);
    c.install_byzantine(5, Box::new(InflateTs::new(100)));
    for i in 1..=5u64 {
        c.write(Value::from_u64(i));
        assert_eq!(c.read(ReaderId(0)).value.as_u64(), Some(i));
    }
}

#[test]
fn regular_reads_never_send_writebacks() {
    let params = Params::trading_reads(2, 1).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous_regular(params), 1);
    c.write(Value::from_u64(1));
    // Slow-ish conditions: crash t servers.
    c.crash_server(0);
    c.crash_server(1);
    let r = c.read(ReaderId(0));
    // Message budget: one round = S sends + alive replies. Even a slow
    // read only adds READ rounds, never W messages.
    let s = c.server_count() as u64;
    assert!(r.msgs <= r.rounds as u64 * (2 * s), "no write-back traffic");
    c.check_regularity().unwrap();
}
