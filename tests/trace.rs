//! Acceptance tests for `lucky-trace` wired through the threaded store:
//! the luck-o-meter on a quiet run, the slow-path counter under an
//! induced fallback, and the flight-recorder dump on a forced timeout.

use lucky_atomic::net::{NetConfig, NetError, NetStore, Transport};
use lucky_atomic::trace::TraceConfig;
use lucky_atomic::types::{Params, RegisterId, Value};
use std::time::Duration;

/// A quiet latency band well inside the round-1 timer: every op's acks
/// arrive long before the timer, so the fast path governs.
fn quiet_cfg() -> NetConfig {
    NetConfig {
        min_latency: Duration::from_micros(50),
        max_latency: Duration::from_micros(300),
        seed: 7,
        timer: Duration::from_millis(10),
    }
}

#[test]
fn quiet_tcp_run_reports_over_ninety_percent_lucky_reads() {
    let params = Params::new(1, 0, 1, 0).unwrap();
    let mut store = NetStore::builder(params, quiet_cfg())
        .transport(Transport::Tcp)
        .trace(TraceConfig::enabled())
        .build();
    let h = store.register(RegisterId(0)).unwrap();
    h.write(Value::from_u64(1)).unwrap();
    for _ in 0..20 {
        h.read(0).unwrap();
    }
    let report = store.trace();
    assert_eq!(report.fast_reads + report.slow_reads, 20, "every read was classified");
    assert!(
        report.lucky_read_ratio() > 0.90,
        "synchrony without contention keeps reads on the fast path: {}/{} lucky",
        report.fast_reads,
        report.fast_reads + report.slow_reads,
    );
    assert_eq!(report.read_latency.count(), 20, "every read latency was recorded");
    assert!(report.read_latency.p50() > 0);
    assert_eq!(report.timeouts, 0);
    // The rollup renders both ways without panicking.
    assert!(report.render_text().contains("lucky"));
    assert!(report.to_json().contains("\"fast_reads\""));
    drop(h);
    store.shutdown();
}

#[test]
fn induced_slow_path_shows_up_as_unlucky_ops() {
    // Disable the fast paths: every operation is forced onto the
    // slow (multi-round) path, the deterministic stand-in for a run
    // where contention spoils the luck.
    let params = Params::new(1, 0, 1, 0).unwrap();
    let mut store = NetStore::builder(params, quiet_cfg())
        .protocol(lucky_atomic::core::ProtocolConfig::slow_only(100))
        .trace(TraceConfig::enabled())
        .build();
    let h = store.register(RegisterId(0)).unwrap();
    h.write(Value::from_u64(9)).unwrap();
    for _ in 0..5 {
        h.read(0).unwrap();
    }
    let report = store.trace();
    assert!(report.slow_reads > 0, "the fallback was taken and counted");
    assert_eq!(report.fast_reads, 0, "no read could be lucky with the fast path off");
    assert!(report.lucky_read_ratio() < 0.5);
    assert!(report.slow_ops() > 0);
    drop(h);
    store.shutdown();
}

#[test]
fn forced_timeout_dumps_the_flight_recorder_with_the_spans() {
    // S = 3, quorums need 2 servers: with two crashed, no op can ever
    // gather a quorum, so the write runs into its deadline.
    let params = Params::new(1, 0, 1, 0).unwrap();
    let mut cfg = quiet_cfg();
    cfg.timer = Duration::from_millis(5); // op deadline = max(200×timer, 1s) = 1s
    let mut store =
        NetStore::builder(params, cfg).crashed(1).crashed(2).trace(TraceConfig::enabled()).build();
    let h = store.register(RegisterId(0)).unwrap();
    let err = h.write(Value::from_u64(1)).unwrap_err();
    assert_eq!(err, NetError::TimedOut);
    let report = store.trace();
    assert_eq!(report.timeouts, 1, "the deadline failure was classified as a timeout");
    assert!(report.dumps > 0, "the failure triggered an automatic dump");
    let dump = report.last_dump.expect("the dump was retained");
    assert!(dump.contains("flight recorder dump"), "dump has its header:\n{dump}");
    assert!(dump.contains("invoke WRITE"), "dump replays the op's invoke mark:\n{dump}");
    assert!(dump.contains("FAILED"), "dump records the failure event:\n{dump}");
    assert!(dump.contains("deadline exceeded"), "dump names the reason:\n{dump}");
    drop(h);
    store.shutdown();
}
