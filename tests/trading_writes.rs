//! §5 "Trading writes": sacrificing the fast write path entirely (remove
//! Fig. 1 line 8) buys fast lucky READs despite the failure of `fr = t`
//! servers — the dual of Appendix A's trade.

use lucky_atomic::core::{ClusterConfig, ProtocolConfig, SimCluster};
use lucky_atomic::types::{Params, ProcessId, ReaderId, ServerId, Value};

fn slow_writes_cluster(t: usize, b: usize) -> SimCluster {
    // fw is irrelevant once the fast path is off; keep fr = t - b for the
    // Params constructor and disable fast writes in the protocol config.
    let params = Params::new(t, b, 0, t - b).unwrap();
    let protocol = ProtocolConfig { fast_writes: false, ..ProtocolConfig::for_sync_bound(100) };
    SimCluster::new(ClusterConfig::synchronous(params).with_protocol(protocol), 1)
}

#[test]
fn every_lucky_read_fast_despite_t_failures() {
    for (t, b) in [(1usize, 0usize), (2, 1), (3, 1), (2, 2)] {
        for crashes in 0..=t {
            let mut c = slow_writes_cluster(t, b);
            let w = c.write(Value::from_u64(1));
            assert_eq!((w.rounds, w.fast), (3, false), "writes are always slow");
            for i in 0..crashes {
                c.crash_server(i as u16);
            }
            let r = c.read(ReaderId(0));
            assert!(
                r.fast,
                "t={t} b={b} crashes={crashes}: with slow writes, every lucky \
                 read is fast up to fr = t failures"
            );
            assert_eq!(r.value.as_u64(), Some(1));
            c.check_atomicity().unwrap();
        }
    }
}

#[test]
fn reads_stay_fast_even_under_worst_case_crash_patterns() {
    // The slow write anchors vw at S − t servers; any t crashes leave
    // b + 1 correct vw holders in every quorum — fastvw always holds.
    let (t, b) = (2usize, 1usize);
    let mut c = slow_writes_cluster(t, b);
    // One server misses the write entirely (messages in transit).
    c.world_mut().hold(ProcessId::Writer, ProcessId::Server(ServerId(5)));
    let w = c.write(Value::from_u64(1));
    assert!(!w.fast);
    // Crash two *holders* — the pattern that breaks fast reads when
    // writes are fast (T1) — yet the read stays fast here.
    c.crash_server(0);
    c.crash_server(1);
    let r = c.read(ReaderId(0));
    assert!(r.fast, "worst-case crash pattern cannot un-luck reads");
    assert_eq!(r.value.as_u64(), Some(1));
    c.check_atomicity().unwrap();
}

#[test]
fn trade_is_real_writes_never_fast() {
    let mut c = slow_writes_cluster(2, 1);
    for i in 1..=10u64 {
        let w = c.write(Value::from_u64(i));
        assert!(!w.fast);
        assert_eq!(w.rounds, 3);
    }
    c.check_atomicity().unwrap();
}

#[test]
fn byzantine_server_does_not_spoil_the_trade() {
    use lucky_atomic::core::byz::InflateTs;
    let params = Params::new(2, 1, 0, 1).unwrap();
    let protocol = ProtocolConfig { fast_writes: false, ..ProtocolConfig::for_sync_bound(100) };
    let mut c = SimCluster::new(ClusterConfig::synchronous(params).with_protocol(protocol), 1);
    c.install_byzantine(3, Box::new(InflateTs::new(50)));
    c.crash_server(4); // full budget: 1 Byzantine + 1 crash = t
    for i in 1..=6u64 {
        c.write(Value::from_u64(i));
        let r = c.read(ReaderId(0));
        assert_eq!(r.value.as_u64(), Some(i));
        assert!(r.fast, "lucky reads stay fast at the full fault budget");
    }
    c.check_atomicity().unwrap();
}
