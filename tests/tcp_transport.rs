//! The real wire: every protocol message crossing loopback TCP sockets
//! as `lucky-wire` frames.
//!
//! Under `Transport::Tcp` each server and each shard worker owns a real
//! `std::net` listener; the router encodes its per-destination
//! socket-slot batches as checksummed frames and writes them to the
//! destination's socket, where a reader thread reassembles them from
//! whatever partial reads TCP produces. These tests pin down:
//!
//! * **equivalence** — all three variants complete a multi-register,
//!   batching-enabled workload over real sockets with checker-clean
//!   verdicts, exactly as over channels;
//! * **byte accounting** — `NetStats::wire_bytes` (true framed bytes)
//!   brackets `NetStats::bytes` (the codec-exact payload accounting)
//!   within framing overhead, and honest runs decode with zero errors;
//! * **fault tolerance** — crashes and Byzantine servers (value
//!   forgers, codec-level `WireFuzz`) within the budget change nothing;
//! * **hostile bytes** — raw garbage injected straight into a server's
//!   socket is rejected cleanly (counted, connection dropped) while the
//!   protocol sails on.

use lucky_atomic::core::byz::{ForgeValue, WireFuzz};
use lucky_atomic::core::Setup;
use lucky_atomic::explore::{random_walks, ByzKind, Scenario};
use lucky_atomic::net::{NetCluster, NetConfig, NetStats, NetStore, Transport};
use lucky_atomic::types::{BatchConfig, Params, RegisterId, Seq, TsVal, TwoRoundParams, Value};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

const REGISTERS: usize = 4;
const READERS_PER_REGISTER: usize = 2;
const ROUNDS: u64 = 4;

fn net_cfg() -> NetConfig {
    let mut cfg = NetConfig::for_latency(Duration::from_micros(50), Duration::from_micros(400));
    cfg.seed = 11;
    cfg
}

/// The three variant setups, sized so one crash plus one Byzantine
/// server stays within the fault budget.
fn setups() -> Vec<Setup> {
    vec![
        Setup::Atomic(Params::new(2, 1, 1, 0).unwrap()),
        Setup::TwoRound(TwoRoundParams::new(2, 1, 1).unwrap()),
        Setup::Regular(Params::trading_reads(2, 1).unwrap()),
    ]
}

/// The framed-bytes bracket: actual on-the-wire bytes must exceed the
/// payload accounting (frames add headers and envelopes, never remove
/// payload) but only by bounded per-frame and per-part overhead — the
/// `NetStats` audit the exact `Message::wire_size` rewrite enables.
fn assert_wire_bytes_bracket(stats: &NetStats) {
    assert!(stats.wire_bytes > stats.bytes, "framing adds overhead: {stats:?}");
    let overhead_bound = stats.max_framing_overhead();
    assert!(
        stats.wire_bytes <= stats.bytes + overhead_bound,
        "framing overhead out of bounds: wire {} vs payload {} (+{overhead_bound} allowed)",
        stats.wire_bytes,
        stats.bytes
    );
}

/// Run the standard mixed workload over TCP and return the final stats.
fn run_workload(
    setup: Setup,
    byzantine: Option<(u16, Adversary)>,
    crashed: Option<u16>,
) -> NetStats {
    let mut builder = NetStore::builder(setup, net_cfg())
        .registers(REGISTERS)
        .readers_per_register(READERS_PER_REGISTER)
        .shards(3)
        .batch(BatchConfig::enabled(16).with_max_delay_micros(500))
        .transport(Transport::Tcp);
    if let Some((i, adversary)) = byzantine {
        builder = builder.byzantine(
            i,
            match adversary {
                Adversary::Forge => {
                    Box::new(ForgeValue::new(TsVal::new(Seq(9_000), Value::from_u64(666))))
                }
                Adversary::Fuzz => Box::new(WireFuzz::new(setup, 7)),
            },
        );
    }
    if let Some(i) = crashed {
        builder = builder.crashed(i);
    }
    let mut store = builder.build();
    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).expect("fresh handle")).collect();
    for round in 0..ROUNDS {
        let mut tickets = Vec::new();
        for h in &handles {
            tickets.push(h.invoke_write(Value::from_u64(1 + h.id().0 as u64 * 1_000 + round)));
        }
        for h in &handles {
            for j in 0..READERS_PER_REGISTER as u16 {
                tickets.push(h.invoke_read(j));
            }
        }
        for t in tickets {
            t.wait().expect("operation completes over TCP");
        }
    }
    match setup {
        Setup::Regular(_) => store.check_regularity().expect("regular verdict over TCP"),
        _ => store.check_atomicity().expect("atomic verdict over TCP"),
    }
    let stats = store.stats();
    store.shutdown();
    stats
}

#[derive(Clone, Copy)]
enum Adversary {
    Forge,
    Fuzz,
}

#[test]
fn all_variants_complete_batched_multi_register_workloads_over_tcp() {
    for setup in setups() {
        let stats = run_workload(setup, None, None);
        assert!(stats.messages > 0 && stats.parts > stats.messages, "batching engaged: {stats:?}");
        assert!(stats.batches_sent > 0, "{setup:?}");
        assert_eq!(stats.decode_errors, 0, "honest frames all decode: {setup:?}");
        assert_eq!(stats.dropped, 0, "no recipient ever went missing: {setup:?}");
        assert!(stats.wire_bytes > 0, "real bytes crossed the sockets: {setup:?}");
        assert_wire_bytes_bracket(&stats);
    }
}

#[test]
fn crash_plus_forging_byzantine_within_budget_over_tcp() {
    for setup in setups() {
        let stats = run_workload(setup, Some((1, Adversary::Forge)), Some(0));
        // The crashed server's slot has no socket: every frame routed
        // there is accounted as dropped parts, not silently lost.
        assert!(stats.dropped > 0, "frames to the crashed server count as dropped");
        assert_eq!(stats.decode_errors, 0);
        assert_wire_bytes_bracket(&stats);
    }
}

#[test]
fn wire_fuzzing_byzantine_server_cannot_break_verdicts_over_tcp() {
    // The codec-level adversary at server 1: most of its replies die in
    // its own corrupted frames (within its fault budget — a drop is a
    // legal Byzantine behaviour), the rest arrive as checksum-valid
    // mangled batches. Verdicts must be unchanged; the WireFuzz-internal
    // assertions additionally prove every corrupted frame was rejected.
    for setup in setups() {
        let stats = run_workload(setup, Some((1, Adversary::Fuzz)), None);
        assert_eq!(stats.decode_errors, 0, "the adversary corrupts pre-send, not the wire");
        assert_wire_bytes_bracket(&stats);
    }
}

#[test]
fn single_register_cluster_api_over_tcp() {
    let params = Params::new(1, 0, 1, 0).unwrap();
    let mut cluster = NetCluster::builder(params, net_cfg()).transport(Transport::Tcp).build();
    let mut writer = cluster.take_writer().unwrap();
    let mut reader = cluster.take_reader(0).unwrap();
    for i in 1..=5u64 {
        writer.write(Value::from_u64(i)).unwrap();
        assert_eq!(reader.read().unwrap().value.as_u64(), Some(i));
    }
    let stats = cluster.stats();
    assert!(stats.wire_bytes > 0);
    assert_eq!(stats.decode_errors, 0);
    assert_wire_bytes_bracket(&stats);
    cluster.shutdown();
}

#[test]
fn raw_garbage_on_a_server_socket_is_rejected_cleanly() {
    let params = Params::new(1, 0, 1, 0).unwrap();
    let mut cluster = NetCluster::builder(params, net_cfg()).transport(Transport::Tcp).build();
    let addr = cluster
        .server_addr(lucky_atomic::types::ServerId(0))
        .expect("TCP transport exposes server addresses");

    // Three hostile connections: plain garbage, a frame with a smashed
    // checksum, and an oversized length prefix. Each must be counted
    // and dropped without disturbing the protocol.
    let mut garbage = TcpStream::connect(addr).unwrap();
    garbage.write_all(b"this is definitely not a lucky-wire frame....").unwrap();
    let mut bad_crc = TcpStream::connect(addr).unwrap();
    let mut frame = lucky_wire::encode_frame(b"payload");
    let last = frame.len() - 1;
    frame[last] ^= 0xFF;
    bad_crc.write_all(&frame).unwrap();
    let mut oversized = TcpStream::connect(addr).unwrap();
    let mut frame = lucky_wire::encode_frame(b"payload");
    frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
    oversized.write_all(&frame).unwrap();

    // The protocol keeps working while the rejects land.
    let mut writer = cluster.take_writer().unwrap();
    let mut reader = cluster.take_reader(0).unwrap();
    writer.write(Value::from_u64(7)).unwrap();
    assert_eq!(reader.read().unwrap().value.as_u64(), Some(7));

    // Rejections are asynchronous (reader threads); wait for all three.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let errors = cluster.stats().decode_errors;
        if errors >= 3 {
            break;
        }
        assert!(Instant::now() < deadline, "only {errors} of 3 hostile frames rejected in time");
        std::thread::sleep(Duration::from_millis(20));
    }

    // And the cluster still works afterwards.
    writer.write(Value::from_u64(8)).unwrap();
    assert_eq!(reader.read().unwrap().value.as_u64(), Some(8));
    drop((garbage, bad_crc, oversized));
    cluster.shutdown();
}

#[test]
fn channel_transport_reports_no_wire_bytes() {
    // The estimate/actual split is explicit: without sockets there are
    // no framed bytes and no decode errors, only the payload estimate.
    let params = Params::new(1, 0, 1, 0).unwrap();
    let mut cluster = NetCluster::builder(params, net_cfg()).build();
    let mut writer = cluster.take_writer().unwrap();
    writer.write(Value::from_u64(1)).unwrap();
    let stats = cluster.stats();
    assert!(stats.bytes > 0);
    assert_eq!(stats.wire_bytes, 0);
    assert_eq!(stats.decode_errors, 0);
    assert!(cluster.server_addr(lucky_atomic::types::ServerId(0)).is_none());
    cluster.shutdown();
}

#[test]
fn values_past_the_frame_cap_fail_the_op_without_killing_the_router() {
    // A value whose PW encoding exceeds `MAX_FRAME_BYTES` can never
    // cross this transport: no splitting helps a single message. The
    // router must drop it (counted) and time the operation out — not
    // panic and take the whole store down with it.
    let params = Params::new(1, 0, 1, 0).unwrap();
    let mut cfg = net_cfg();
    cfg.timer = Duration::from_millis(1); // keep the op deadline short
    let mut store = NetStore::builder(params, cfg).registers(2).transport(Transport::Tcp).build();
    let h0 = store.register(RegisterId(0)).unwrap();
    let h1 = store.register(RegisterId(1)).unwrap();
    let oversized = Value::from_bytes(vec![0u8; lucky_wire::MAX_FRAME_BYTES + 64]);
    assert!(h0.write(oversized).is_err(), "unframeable write must fail, not hang or panic");
    // The router survives: other registers keep operating normally.
    h1.write(Value::from_u64(7)).unwrap();
    assert_eq!(h1.read(0).unwrap().value.as_u64(), Some(7));
    let stats = store.stats();
    assert!(stats.dropped > 0, "the unframeable parts are accounted: {stats:?}");
    store.shutdown();
}

#[test]
fn coalesced_loads_past_the_frame_cap_split_into_multiple_frames() {
    // Moderate values that fit a frame individually but not together:
    // an aggressive batching window stages them onto one socket-slot,
    // and the router must split the load across frames instead of
    // tripping the codec caps. Everything completes and stays clean.
    let params = Params::new(1, 0, 1, 0).unwrap();
    let mut store = NetStore::builder(params, net_cfg())
        .registers(8)
        .shards(2)
        .batch(BatchConfig::enabled(16).with_max_delay_micros(2_000))
        .transport(Transport::Tcp)
        .build();
    let handles: Vec<_> =
        RegisterId::all(8).map(|reg| store.register(reg).expect("fresh handle")).collect();
    // 8 concurrent ~200 KiB writes: the PWs to one server can stage to
    // ~1.6 MiB, past the 1 MiB frame cap.
    let payload = vec![0x5Au8; 200 * 1024];
    let tickets: Vec<_> =
        handles.iter().map(|h| h.invoke_write(Value::from_bytes(payload.clone()))).collect();
    for t in tickets {
        t.wait().expect("chunked frames still deliver every write");
    }
    for h in &handles {
        assert_eq!(h.read(0).unwrap().value.len(), payload.len());
    }
    store.check_atomicity().unwrap();
    let stats = store.stats();
    assert_eq!(stats.dropped, 0, "nothing was unframeable: {stats:?}");
    assert_eq!(stats.decode_errors, 0);
    assert!(stats.wire_bytes > 8 * payload.len() as u64, "the payloads crossed the wire");
    store.shutdown();
}

#[test]
fn explore_random_walks_with_wire_fuzzing_server_stay_atomic() {
    // The explorer's deterministic WireFuzz: every schedule of a write
    // racing two readers against a codec-level adversary keeps the
    // §2.2 verdicts (and the in-adversary assertions prove each
    // corrupted frame was cleanly rejected on every explored path).
    let params = Params::new(1, 1, 0, 0).unwrap();
    let scenario = Scenario::new(params)
        .write(Value::from_u64(1))
        .write(Value::from_u64(2))
        .reads(0, 1)
        .reads(1, 1)
        .byzantine(2, ByzKind::WireFuzz);
    let report = random_walks(&scenario, 400, 260, 13);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.completed_runs > 0, "fuzzed schedules still complete the workload");
}
