//! Sharding invariants: fault isolation between server groups, live
//! migration under concurrent traffic, and fresh state across
//! drop-then-recreate — on both the simulated and the threaded runtime.

use lucky_atomic::core::byz::ForgeValue;
use lucky_atomic::core::StoreConfig;
use lucky_atomic::net::{NetConfig, Transport};
use lucky_atomic::shard::{GroupId, ShardNetStore, ShardSimStore};
use lucky_atomic::types::{Params, RegisterId, Seq, TsVal, Value};
use std::sync::Arc;
use std::time::Duration;

fn small() -> Params {
    Params::new(1, 0, 1, 0).unwrap() // S = 3, crash-only
}

fn byz_tolerant() -> Params {
    Params::new(2, 1, 1, 0).unwrap() // S = 6, one Byzantine server
}

fn fast_net() -> NetConfig {
    NetConfig {
        min_latency: Duration::from_micros(50),
        max_latency: Duration::from_micros(200),
        seed: 11,
        timer: Duration::from_millis(5),
    }
}

/// One register per group, so every group sees traffic.
fn one_reg_per_group(store: &mut ShardSimStore, groups: usize) -> Vec<RegisterId> {
    let mut picked = Vec::new();
    let mut reg = 0u32;
    while picked.len() < groups {
        store.create_register(RegisterId(reg)).ok();
        if picked.iter().all(|r| store.group_of(*r) != store.group_of(RegisterId(reg))) {
            picked.push(RegisterId(reg));
        } else {
            store.drop_register(RegisterId(reg)).unwrap();
        }
        reg += 1;
    }
    picked
}

#[test]
fn faults_in_one_group_leave_the_others_untouched() {
    // Group 1 runs a Byzantine-tolerant quorum and absorbs a crash AND a
    // forged value; groups 0, 2, 3 keep lean crash-only quorums and must
    // stay byte-for-byte correct and fast.
    let cfg =
        StoreConfig::synchronous(small()).registers(8).groups(4).group_setup(1, byz_tolerant());
    let mut store = ShardSimStore::new(cfg);
    let regs = one_reg_per_group(&mut store, 4);

    // Fault load entirely inside group 1.
    let forged = TsVal::new(Seq(1_000), Value::from_u64(666_666));
    store.group_mut(GroupId(1)).install_byzantine(0, Box::new(ForgeValue::new(forged)));
    store.group_mut(GroupId(1)).crash_server(1);

    for (i, reg) in regs.iter().enumerate() {
        store.write(*reg, Value::from_u64(100 + i as u64)).unwrap();
        let r = store.read(*reg, 0).unwrap();
        assert_eq!(
            r.value.as_u64(),
            Some(100 + i as u64),
            "register {reg} (group {}) must read back its own write",
            store.group_of(*reg)
        );
        assert_ne!(r.value.as_u64(), Some(666_666), "the forged value must never escape");
    }
    store.check_atomicity().unwrap();

    // The faulted group's world saw its faults; the others saw zero
    // recoveries and zero extra servers' worth of traffic.
    for g in [0u16, 2, 3] {
        assert_eq!(
            store.group(GroupId(g)).history().ops.len(),
            2,
            "group {g} must have served exactly its own two ops"
        );
    }
}

#[test]
fn migration_mid_write_is_checker_clean_sim() {
    let cfg =
        StoreConfig::synchronous(small()).registers(16).groups(3).group_setup(2, byz_tolerant());
    let mut store = ShardSimStore::new(cfg);
    store.bulk_create(8).unwrap();

    let reg = RegisterId(5);
    store.write(reg, Value::from_u64(1)).unwrap();
    // A write is in flight when the migration starts: the drain phase
    // must wait it out, and the transfer must carry ITS value.
    store.invoke_write(reg, Value::from_u64(2)).unwrap();
    let from = store.group_of(reg);
    let to = GroupId((from.0 + 1) % 3);
    let report = store.migrate(reg, to).unwrap();
    assert_eq!(report.drained, 1, "the in-flight write must be drained");
    assert_eq!(report.carried.as_u64(), Some(2), "the drained write is the state that moves");
    assert_eq!(store.group_of(reg), to);

    // Post-migration traffic lands on the destination group.
    store.write(reg, Value::from_u64(3)).unwrap();
    assert_eq!(store.read(reg, 0).unwrap().value.as_u64(), Some(3));
    store.check_atomicity().unwrap();
}

#[test]
fn migration_under_live_traffic_is_checker_clean_net() {
    let cfg = StoreConfig::synchronous(small()).registers(16).groups(2);
    let store = Arc::new(ShardNetStore::builder(cfg, fast_net()).transport(Transport::Tcp).build());
    store.bulk_create(8).unwrap();

    let reg = RegisterId(3);
    let from = store.group_of(reg);
    let to = GroupId((from.0 + 1) % 2);

    // A writer hammers the register from another thread while the main
    // thread migrates it. Every op must either complete normally or land
    // on the destination group — none may be lost or reordered.
    let writer = {
        let store = store.clone();
        std::thread::spawn(move || {
            let mut done = 0u64;
            for i in 1..=40u64 {
                store.write(reg, Value::from_u64(i)).unwrap();
                done = i;
            }
            done
        })
    };
    // Let some writes land, then migrate mid-traffic.
    std::thread::sleep(Duration::from_millis(5));
    let report = store.migrate(reg, to).unwrap();
    let last = writer.join().unwrap();
    assert_eq!(last, 40);
    assert_eq!(store.group_of(reg), to);
    assert!(report.carried.as_u64().is_some(), "some prefix of writes crossed");

    // The final read sees the last write, through the new group.
    assert_eq!(store.read(reg, 0).unwrap().value.as_u64(), Some(40));
    store.check_atomicity().unwrap();
    let stats = store.stats();
    assert!(stats.per_group.len() == 2, "rollup must report both groups");
    assert!(
        stats.per_group[&to].ops > 0,
        "the destination group must have served post-migration ops"
    );
    store.shutdown();
}

#[test]
fn drop_then_recreate_yields_fresh_state() {
    // Sim runtime.
    let cfg = StoreConfig::synchronous(small()).registers(8).groups(2);
    let mut store = ShardSimStore::new(cfg.clone());
    let reg = RegisterId(0);
    store.create_register(reg).unwrap();
    store.write(reg, Value::from_u64(77)).unwrap();
    let old_binding = store.namespace().binding(reg).unwrap();
    store.drop_register(reg).unwrap();
    store.create_register(reg).unwrap();
    let r = store.read(reg, 0).unwrap();
    assert!(r.value.is_bot(), "a recreated register must start from ⊥, got {:?}", r.value);
    let new_binding = store.namespace().binding(reg).unwrap();
    assert_ne!(old_binding.backing, new_binding.backing, "backing slots are never reused");
    store.check_atomicity().unwrap();

    // Threaded runtime.
    let store = ShardNetStore::builder(cfg, fast_net()).build();
    store.create_register(reg).unwrap();
    store.write(reg, Value::from_u64(88)).unwrap();
    store.drop_register(reg).unwrap();
    store.create_register(reg).unwrap();
    let r = store.read(reg, 0).unwrap();
    assert!(r.value.is_bot(), "net: a recreated register must start from ⊥, got {:?}", r.value);
    store.check_atomicity().unwrap();
    store.shutdown();
}
