//! The epoll reactor driver, end to end.
//!
//! Pins the three properties `Driver::Reactor` exists for:
//!
//! * **Concurrency** — one reactor thread sustains ≥ 5,000 concurrent
//!   in-flight sessions over real TCP sockets, checker-clean, with every
//!   completed `OpRecord` carrying real (nonzero) per-op `msgs`/`bytes`
//!   attribution;
//! * **Generality** — the same reactor drives all three protocol
//!   variants interchangeably with the other drivers;
//! * **Idleness** — a reactor with no IO and no timers due sleeps in
//!   `epoll_wait` and burns no CPU (its wakeup counter stops moving).
//!
//! The futures client API rides the same stores: `write_async` /
//! `read_async` awaited through the crate's std-only executor.
#![cfg(target_os = "linux")]

use lucky_atomic::core::Setup;
use lucky_atomic::net::exec::{block_on, run_all, Executor};
use lucky_atomic::net::{Driver, NetConfig, NetStore, Transport};
use lucky_atomic::types::{Params, RegisterId, TwoRoundParams, Value};
use std::time::Duration;

fn cfg(timer_millis: u64, seed: u64) -> NetConfig {
    NetConfig {
        min_latency: Duration::from_micros(50),
        max_latency: Duration::from_micros(200),
        seed,
        timer: Duration::from_millis(timer_millis),
    }
}

fn reactor_store(setup: impl Into<Setup>, registers: usize, shards: usize, seed: u64) -> NetStore {
    // A generous timer keeps the derived op deadline far above the
    // burst's drain time, so no session under load falsely times out.
    NetStore::builder(setup, cfg(40, seed))
        .registers(registers)
        .shards(shards)
        .transport(Transport::Tcp)
        .driver(Driver::Reactor)
        .build()
}

/// The acceptance run: 2,500 registers — writer + reader each, so 5,000
/// client sessions — multiplexed on ONE reactor thread, every operation
/// submitted before any is waited on.
#[test]
fn one_reactor_thread_sustains_5000_in_flight_sessions() {
    const REGISTERS: usize = 2_500;
    let mut store = reactor_store(Params::new(1, 0, 1, 0).unwrap(), REGISTERS, 1, 7);
    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).expect("fresh handle")).collect();
    // 5,000 in-flight sessions: every register's write AND read are
    // submitted (and therefore begun by the worker) before anything is
    // waited on.
    let mut tickets = Vec::with_capacity(2 * REGISTERS);
    for h in &handles {
        tickets.push(h.invoke_write(Value::from_u64(1 + h.id().0 as u64)));
        tickets.push(h.invoke_read(0));
    }
    for t in tickets {
        t.wait().expect("every multiplexed operation completes");
    }
    // Per-op traffic attribution is real: every completed record moved
    // actual wire messages and bytes (the polled/reactor append path
    // used to hardcode zeros here).
    let history = store.history();
    assert_eq!(history.ops.len(), 2 * REGISTERS);
    for rec in &history.ops {
        assert!(rec.completed_at.is_some(), "op {:?} completed", rec.id);
        assert!(rec.msgs > 0, "op {:?} attributes its wire messages", rec.id);
        assert!(rec.bytes > 0, "op {:?} attributes its wire bytes", rec.id);
    }
    store.check_atomicity().expect("5,000-session burst stays linearizable per register");
    let stats = store.stats();
    assert!(stats.reactor_wakeups > 0, "the reactor actually ran");
    assert_eq!(stats.io_errors, 0, "no degradation under the happy path");
    store.shutdown();
}

/// All three protocol variants run on the reactor, a few hundred
/// concurrent sessions across a handful of reactor threads each.
#[test]
fn all_three_variants_run_on_the_reactor() {
    let setups: Vec<Setup> = vec![
        Setup::Atomic(Params::new(2, 1, 1, 0).unwrap()),
        Setup::TwoRound(TwoRoundParams::new(2, 1, 1).unwrap()),
        Setup::Regular(Params::trading_reads(2, 1).unwrap()),
    ];
    for (i, setup) in setups.into_iter().enumerate() {
        const REGISTERS: usize = 300;
        let mut store = reactor_store(setup, REGISTERS, 3, 20 + i as u64);
        let handles: Vec<_> = RegisterId::all(REGISTERS)
            .map(|reg| store.register(reg).expect("fresh handle"))
            .collect();
        let mut tickets = Vec::new();
        for h in &handles {
            tickets.push(h.invoke_write(Value::from_u64(10 + h.id().0 as u64)));
            tickets.push(h.invoke_read(0));
        }
        for t in tickets {
            t.wait().expect("operation completes");
        }
        match setup {
            Setup::Regular(_) => store.check_regularity().expect("regularity holds"),
            _ => store.check_atomicity().expect("atomicity holds"),
        }
        store.shutdown();
    }
}

/// An idle reactor burns no CPU: once every session has settled, the
/// worker blocks in `epoll_wait` with no timeout — so its wakeup counter
/// must not move while the store sits idle.
#[test]
fn idle_reactors_do_not_wake_up() {
    let mut store = reactor_store(Params::new(1, 0, 1, 0).unwrap(), 4, 2, 31);
    let h = store.register(RegisterId(0)).unwrap();
    h.write(Value::from_u64(5)).expect("warm-up write completes");
    assert_eq!(h.read(0).unwrap().value.as_u64(), Some(5));
    // Let any tail work (late acks crossing the sockets) drain fully.
    std::thread::sleep(Duration::from_millis(100));
    let before = store.stats().reactor_wakeups;
    std::thread::sleep(Duration::from_millis(400));
    let after = store.stats().reactor_wakeups;
    assert_eq!(
        before, after,
        "an idle reactor must sleep in epoll_wait, not tick ({before} -> {after} wakeups)"
    );
    // And it is not dead: the next operation completes normally.
    assert_eq!(h.read(0).unwrap().value.as_u64(), Some(5));
    store.shutdown();
}

/// The futures API over the reactor: `block_on` one op, then hold a
/// thousand `async` ops in flight from a single caller thread via the
/// std-only executor.
#[test]
fn futures_api_drives_the_reactor_store() {
    const REGISTERS: usize = 500;
    let mut store = reactor_store(Params::new(1, 0, 1, 0).unwrap(), REGISTERS, 2, 43);
    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).expect("fresh handle")).collect();

    // One op, simplest executor.
    let out = block_on(handles[0].write_async(Value::from_u64(1))).expect("write completes");
    assert!(out.rounds >= 1);

    // A write-then-read chain per register — 500 tasks, 1,000 ops —
    // multiplexed on this one thread by `run_all`.
    let futs: Vec<_> = handles
        .iter()
        .map(|h| {
            let v = 100 + h.id().0 as u64;
            let write = h.write_future(Value::from_u64(v));
            let read = h.read_future(0);
            async move {
                write.await.expect("write completes");
                let r = read.await.expect("read completes");
                (v, r.value.as_u64())
            }
        })
        .collect();
    for (v, read) in run_all(futs) {
        // Write and read were concurrent (both submitted up front), so
        // the read saw the initial or the new value; the checker is the
        // real oracle.
        assert!(read.is_none() || read == Some(v), "read {read:?}, wrote {v}");
    }
    store.check_atomicity().expect("async workload stays linearizable");
    store.shutdown();

    // Dropping a future abandons the wait, not the op: nothing hangs,
    // and an explicit Executor drives leftovers fine.
    let mut store = reactor_store(Params::new(1, 0, 1, 0).unwrap(), 1, 1, 44);
    let h = store.register(RegisterId(0)).unwrap();
    drop(h.write_future(Value::from_u64(9)));
    let mut exec = Executor::new();
    let read = h.read_future(0);
    exec.spawn(async move {
        read.await.expect("read completes");
    });
    exec.run();
    store.shutdown();
}
