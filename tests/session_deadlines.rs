//! Op-deadline semantics, end to end.
//!
//! The per-operation deadline is a **session** concern (configured once,
//! enforced inside the sans-io `ClientSession`), so the same behaviour
//! must surface on every runtime:
//!
//! * threaded runtime, threaded driver: an operation that cannot
//!   assemble a quorum (majority crashed) fails with
//!   [`NetError::TimedOut`];
//! * threaded runtime, polled driver (over real TCP sockets): same
//!   error, same semantics — and tickets are pollable while the doomed
//!   operation is still pending;
//! * simulator: the session abandons the operation at **exactly** the
//!   configured deadline tick, surfacing as
//!   [`RunError::OpFailed`] with the precise virtual instant.

use lucky_atomic::net::{Driver, NetConfig, NetError, NetStore, Transport};
use lucky_atomic::sim::RunError;
use lucky_atomic::types::{Params, ProcessId, RegisterId, Value};
use std::time::Duration;

/// S = 3, t = 1 crash-only: crashing two servers makes every quorum
/// unreachable, so operations can only end at the deadline.
fn params() -> Params {
    Params::new(1, 0, 1, 0).unwrap()
}

/// A short timer so the derived op deadline is its floor (1s), keeping
/// the stalled runs bounded in CI.
fn stall_cfg() -> NetConfig {
    NetConfig {
        min_latency: Duration::from_micros(50),
        max_latency: Duration::from_micros(200),
        seed: 1,
        timer: Duration::from_millis(1),
    }
}

#[test]
fn threaded_driver_times_out_without_a_quorum() {
    let mut store = NetStore::builder(params(), stall_cfg()).crashed(0).crashed(1).build();
    let h = store.register(RegisterId(0)).unwrap();
    assert_eq!(h.write(Value::from_u64(1)).unwrap_err(), NetError::TimedOut);
    // The failed operation is recorded as incomplete, not completed.
    let history = store.history();
    assert_eq!(history.ops.len(), 1);
    assert!(history.ops[0].completed_at.is_none());
    store.shutdown();
}

#[test]
fn polled_driver_times_out_without_a_quorum_over_tcp() {
    let mut store = NetStore::builder(params(), stall_cfg())
        .driver(Driver::Polled)
        .transport(Transport::Tcp)
        .crashed(0)
        .crashed(1)
        .build();
    let h = store.register(RegisterId(0)).unwrap();
    // Poll the doomed ticket while it is still pending: `is_done` and
    // `wait_for` report in-flight without consuming the outcome.
    let mut ticket = h.invoke_write(Value::from_u64(1));
    assert!(!ticket.is_done(), "operation still in flight");
    assert_eq!(ticket.wait_for(Duration::from_millis(10)).unwrap(), None, "still in flight");
    assert_eq!(ticket.wait().unwrap_err(), NetError::TimedOut);
    let history = store.history();
    assert_eq!(history.ops.len(), 1);
    assert!(history.ops[0].completed_at.is_none());
    store.shutdown();
}

#[test]
fn polled_driver_times_out_under_the_channel_transport_too() {
    let mut store = NetStore::builder(params(), stall_cfg())
        .driver(Driver::Polled)
        .crashed(0)
        .crashed(1)
        .build();
    let h = store.register(RegisterId(0)).unwrap();
    assert_eq!(h.write(Value::from_u64(1)).unwrap_err(), NetError::TimedOut);
    store.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn reactor_driver_times_out_without_a_quorum() {
    let mut store = NetStore::builder(params(), stall_cfg())
        .driver(Driver::Reactor)
        .transport(Transport::Tcp)
        .crashed(0)
        .crashed(1)
        .build();
    let h = store.register(RegisterId(0)).unwrap();
    assert_eq!(h.write(Value::from_u64(1)).unwrap_err(), NetError::TimedOut);
    let history = store.history();
    assert_eq!(history.ops.len(), 1);
    assert!(history.ops[0].completed_at.is_none());
    store.shutdown();
}

#[test]
fn deadline_failures_are_never_reported_as_driver_busy() {
    // The polled driver used to fold `SessionError::Busy` (a driver
    // invariant violation — two ops begun on one session) into
    // `NetError::TimedOut` (a protocol deadline). The two are distinct
    // errors now, each with its own identity and message; a genuine
    // deadline failure must surface as `TimedOut` under every driver
    // (the surrounding tests drive that path per driver), and `Busy`
    // stays unrepresentable through the public API because every driver
    // serializes operations per session before calling `begin`.
    assert_ne!(NetError::TimedOut, NetError::DriverBusy);
    assert_eq!(NetError::TimedOut.to_string(), "operation did not complete within the deadline");
    assert_eq!(
        NetError::DriverBusy.to_string(),
        "driver invariant violation: an operation was already in flight"
    );
    // Queued ops on one session are fine (serialized, never Busy): two
    // concurrent writes on a healthy register both complete.
    let cfg = NetConfig {
        min_latency: Duration::from_micros(50),
        max_latency: Duration::from_micros(200),
        seed: 3,
        timer: Duration::from_millis(5),
    };
    for driver in [Driver::Threaded, Driver::Polled] {
        let mut store = NetStore::builder(params(), cfg.clone()).driver(driver).build();
        let h = store.register(RegisterId(0)).unwrap();
        let tickets: Vec<_> = (1..=2).map(|i| h.invoke_write(Value::from_u64(i))).collect();
        for t in tickets {
            t.wait().unwrap_or_else(|e| panic!("queued write completes under {driver:?}: {e}"));
        }
        store.shutdown();
    }
}

#[test]
fn ticket_polling_observes_a_completed_op_without_blocking() {
    // Failure-free store: submit, then poll until done.
    let cfg = NetConfig {
        min_latency: Duration::from_micros(50),
        max_latency: Duration::from_micros(200),
        seed: 2,
        timer: Duration::from_millis(5),
    };
    let mut store = NetStore::builder(params(), cfg).build();
    let h = store.register(RegisterId(0)).unwrap();
    let mut ticket = h.invoke_write(Value::from_u64(9));
    let mut outcome = None;
    for _ in 0..1_000 {
        match ticket.wait_for(Duration::from_millis(10)).unwrap() {
            Some(out) => {
                outcome = Some(out);
                break;
            }
            None => continue,
        }
    }
    let out = outcome.expect("write completes well within the polling budget");
    assert_eq!(out.value.as_u64(), Some(9));
    assert!(ticket.is_done(), "settled tickets stay observable");
    // `wait` after polling returns the cached result instead of hanging.
    assert_eq!(ticket.wait().unwrap().value.as_u64(), Some(9));
    store.shutdown();
}

#[test]
fn sim_session_fails_at_the_exact_deadline_tick() {
    const DEADLINE: u64 = 5_000;
    let mut store = lucky_atomic::core::StoreConfig::synchronous(params())
        .with_op_deadline(DEADLINE)
        .build_sim();
    // Hold every link out of the writer: the PW round never reaches any
    // server, so only the deadline can end the operation.
    store.world_mut().hold_all_from(ProcessId::Writer);
    let op = store.register(RegisterId(0)).invoke_write(Value::from_u64(1));
    let invoked_at = store.history().ops[0].invoked_at;
    let err = store.run_until_complete(op).unwrap_err();
    match err {
        RunError::OpFailed { op: failed, at } => {
            assert_eq!(failed, op);
            assert_eq!(at, invoked_at + DEADLINE, "failure lands exactly at the deadline tick");
        }
        other => panic!("expected OpFailed, got {other:?}"),
    }
    assert_eq!(store.world().op_failed(op), Some(invoked_at + DEADLINE));
    // The abandoned operation never completes and the history stays
    // checker-clean (it is a pending op, not a bogus completion).
    assert!(store.history().ops[0].completed_at.is_none());
    store.check_atomicity().unwrap();
}

#[test]
fn sim_majority_crash_also_fails_at_the_deadline() {
    const DEADLINE: u64 = 7_500;
    let mut store = lucky_atomic::core::StoreConfig::synchronous(params())
        .with_op_deadline(DEADLINE)
        .build_sim();
    store.crash_server(0);
    store.crash_server(1);
    let op = store.register(RegisterId(0)).invoke_write(Value::from_u64(2));
    let invoked_at = store.history().ops[0].invoked_at;
    match store.run_until_complete(op).unwrap_err() {
        RunError::OpFailed { at, .. } => assert_eq!(at, invoked_at + DEADLINE),
        other => panic!("expected OpFailed, got {other:?}"),
    }
}

#[test]
fn sim_late_quorum_after_a_deadline_failure_is_discarded() {
    // The operation fails at the deadline, *then* the held PW round is
    // released and the quorum's acks complete the abandoned core: the
    // session must discard that late completion (the client already
    // observed the failure) and the run must not panic.
    const DEADLINE: u64 = 5_000;
    let mut store = lucky_atomic::core::StoreConfig::synchronous(params())
        .with_op_deadline(DEADLINE)
        .build_sim();
    store.world_mut().hold_all_from(ProcessId::Writer);
    let op = store.register(RegisterId(0)).invoke_write(Value::from_u64(1));
    assert!(matches!(store.run_until_complete(op).unwrap_err(), RunError::OpFailed { .. }));
    store.world_mut().release_all_from(ProcessId::Writer);
    store.run_until_idle(100_000);
    assert!(store.history().ops[0].completed_at.is_none(), "the failed op never completes");
    store.check_atomicity().unwrap();
}

#[test]
fn sim_without_a_deadline_still_stalls_as_before() {
    // No configured deadline: the pre-session behaviour (queue drains,
    // RunError::Stalled) is preserved.
    let mut store = lucky_atomic::core::StoreConfig::synchronous(params()).build_sim();
    store.world_mut().hold_all_from(ProcessId::Writer);
    let op = store.register(RegisterId(0)).invoke_write(Value::from_u64(1));
    assert!(matches!(store.run_until_complete(op).unwrap_err(), RunError::Stalled { .. }));
}
