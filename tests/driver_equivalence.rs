//! Differential harness for the client-driving strategies: the
//! **threaded** driver (one blocking `ClientDriver` per job) and the
//! **polled** driver (one nonblocking readiness loop multiplexing each
//! shard's sessions) must be observably interchangeable.
//!
//! Both drivers consume the same sans-io `ClientSession`, so for a
//! deterministic (sequential-per-register) workload they must produce
//! **identical `OpOutcome` streams** — register, kind and value, for all
//! three protocol variants — and identical checker verdicts; for a
//! concurrent workload, where wall-clock interleavings legitimately
//! differ, the per-register linearizability/regularity oracles must pass
//! under both. Fault tolerance must be driver-independent too: a crash +
//! Byzantine run over real TCP sockets (`Transport::Tcp`) completes
//! checker-clean under both drivers.

use lucky_atomic::core::byz::ForgeValue;
use lucky_atomic::core::Setup;
use lucky_atomic::net::{Driver, NetConfig, NetStore, NetStoreBuilder, Transport};
use lucky_atomic::types::{OpKind, Params, RegisterId, Seq, TsVal, TwoRoundParams, Value};
use std::time::Duration;

const REGISTERS: usize = 4;
const READERS_PER_REGISTER: usize = 2;
const ROUNDS: u64 = 3;

fn setups() -> Vec<Setup> {
    vec![
        Setup::Atomic(Params::new(2, 1, 1, 0).unwrap()),
        Setup::TwoRound(TwoRoundParams::new(2, 1, 1).unwrap()),
        Setup::Regular(Params::trading_reads(2, 1).unwrap()),
    ]
}

fn net_cfg(timer_millis: u64) -> NetConfig {
    NetConfig {
        min_latency: Duration::from_micros(50),
        max_latency: Duration::from_micros(300),
        seed: 11,
        timer: Duration::from_millis(timer_millis),
    }
}

fn value_for(reg: RegisterId, round: u64) -> u64 {
    1 + reg.0 as u64 * 1_000 + round
}

fn builder(setup: Setup, driver: Driver, transport: Transport, faulty: bool) -> NetStoreBuilder {
    let timer = if transport == Transport::Tcp { 8 } else { 4 };
    let mut b = NetStore::builder(setup, net_cfg(timer))
        .registers(REGISTERS)
        .readers_per_register(READERS_PER_REGISTER)
        .shards(3)
        .transport(transport)
        .driver(driver);
    if faulty {
        // One crashed server plus one value-forging Byzantine server:
        // within every variant's fault budget (t = 2, b = 1).
        b = b
            .crashed(0)
            .byzantine(1, Box::new(ForgeValue::new(TsVal::new(Seq(77), Value::from_u64(666)))));
    }
    b
}

/// One deterministic outcome-stream entry: the fields that must match
/// across drivers exactly (wall-clock metrics like `elapsed` and the
/// fast/slow split legitimately vary between runs).
type Outcome = (RegisterId, OpKind, Option<u64>);

/// The sequential workload: per round, every register writes then both
/// its readers read, each operation waited to completion before the
/// next. Values read are fully determined, so the stream is comparable
/// element for element.
fn run_sequential(
    setup: Setup,
    driver: Driver,
    transport: Transport,
    faulty: bool,
) -> Vec<Outcome> {
    let mut store = builder(setup, driver, transport, faulty).build();
    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).expect("fresh handle")).collect();
    let mut stream = Vec::new();
    for round in 0..ROUNDS {
        for h in &handles {
            let v = value_for(h.id(), round);
            let out = h.write(Value::from_u64(v)).expect("write completes");
            assert_eq!(out.kind, OpKind::Write);
            stream.push((out.reg, out.kind, out.value.as_u64()));
            for j in 0..READERS_PER_REGISTER as u16 {
                let out = h.read(j).expect("read completes");
                assert_eq!(
                    out.value.as_u64(),
                    Some(v),
                    "sequential read returns the last written value ({setup:?}, {driver:?})"
                );
                stream.push((out.reg, out.kind, out.value.as_u64()));
            }
        }
    }
    match setup {
        Setup::Regular(_) => store.check_regularity().expect("regularity holds"),
        _ => store.check_atomicity().expect("atomicity holds"),
    }
    store.shutdown();
    stream
}

/// The concurrent workload: every register's write and reads submitted
/// before anything is waited on, so sessions genuinely overlap (on the
/// polled driver, several ops multiplex one worker thread). Values read
/// are timing-dependent; the oracle is the checker.
fn run_concurrent(setup: Setup, driver: Driver, transport: Transport, faulty: bool) -> usize {
    let mut store = builder(setup, driver, transport, faulty).build();
    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).expect("fresh handle")).collect();
    let mut completed = 0;
    for round in 0..ROUNDS {
        let mut tickets = Vec::new();
        for h in &handles {
            tickets.push(h.invoke_write(Value::from_u64(value_for(h.id(), round))));
            for j in 0..READERS_PER_REGISTER as u16 {
                tickets.push(h.invoke_read(j));
            }
        }
        for t in tickets {
            t.wait().expect("concurrent operation completes");
            completed += 1;
        }
    }
    match setup {
        Setup::Regular(_) => store.check_regularity().expect("regularity holds"),
        _ => store.check_atomicity().expect("atomicity holds"),
    }
    store.shutdown();
    completed
}

#[test]
fn sequential_outcome_streams_are_identical_across_drivers() {
    for setup in setups() {
        let threaded = run_sequential(setup, Driver::Threaded, Transport::Channel, false);
        let polled = run_sequential(setup, Driver::Polled, Transport::Channel, false);
        assert_eq!(
            threaded, polled,
            "threaded and polled drivers diverged on the deterministic workload ({setup:?})"
        );
        assert_eq!(threaded.len(), (ROUNDS as usize) * REGISTERS * (1 + READERS_PER_REGISTER));
    }
}

#[test]
fn concurrent_workloads_stay_checker_clean_under_both_drivers() {
    for setup in setups() {
        for driver in [Driver::Threaded, Driver::Polled] {
            let completed = run_concurrent(setup, driver, Transport::Channel, false);
            assert_eq!(
                completed,
                (ROUNDS as usize) * REGISTERS * (1 + READERS_PER_REGISTER),
                "({setup:?}, {driver:?})"
            );
        }
    }
}

#[test]
fn crash_plus_byzantine_over_tcp_is_driver_independent() {
    // The acceptance run: a crashed server and a value-forging Byzantine
    // server over real sockets, all three variants, all three drivers —
    // identical deterministic streams and clean checker verdicts.
    for setup in setups() {
        let threaded = run_sequential(setup, Driver::Threaded, Transport::Tcp, true);
        let polled = run_sequential(setup, Driver::Polled, Transport::Tcp, true);
        assert_eq!(threaded, polled, "drivers diverged under faults over TCP ({setup:?})");
        if cfg!(target_os = "linux") {
            let reactor = run_sequential(setup, Driver::Reactor, Transport::Tcp, true);
            assert_eq!(threaded, reactor, "reactor diverged under faults over TCP ({setup:?})");
        }
    }
}

#[test]
fn concurrent_tcp_workloads_stay_checker_clean_under_all_drivers() {
    let drivers: &[Driver] = if cfg!(target_os = "linux") {
        &[Driver::Threaded, Driver::Polled, Driver::Reactor]
    } else {
        &[Driver::Threaded, Driver::Polled]
    };
    for setup in setups() {
        for &driver in drivers {
            let completed = run_concurrent(setup, driver, Transport::Tcp, false);
            assert_eq!(
                completed,
                (ROUNDS as usize) * REGISTERS * (1 + READERS_PER_REGISTER),
                "({setup:?}, {driver:?})"
            );
        }
    }
}

/// One luck-pinned stream entry: outcome fields *plus* the round count
/// and fast/slow classification the tracer reports.
type LuckOutcome = (RegisterId, OpKind, Option<u64>, u32, bool);

/// Sequential workload with a timer generous enough (20ms) that no op
/// ever straddles the round-1 deadline: the rounds/fast classification
/// is then fully determined by the variant, so it must be identical
/// across drivers — not just the values read.
fn run_luck_pinned(setup: Setup, driver: Driver) -> Vec<LuckOutcome> {
    const LUCK_ROUNDS: u64 = 2;
    let mut store = NetStore::builder(setup, net_cfg(20))
        .registers(REGISTERS)
        .readers_per_register(READERS_PER_REGISTER)
        .shards(3)
        .transport(Transport::Tcp)
        .driver(driver)
        .build();
    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).expect("fresh handle")).collect();
    let mut stream = Vec::new();
    for round in 0..LUCK_ROUNDS {
        for h in &handles {
            let out = h.write(Value::from_u64(value_for(h.id(), round))).expect("write completes");
            stream.push((out.reg, out.kind, out.value.as_u64(), out.rounds, out.fast));
            for j in 0..READERS_PER_REGISTER as u16 {
                let out = h.read(j).expect("read completes");
                stream.push((out.reg, out.kind, out.value.as_u64(), out.rounds, out.fast));
            }
        }
    }
    store.shutdown();
    stream
}

#[test]
fn round_counts_and_luck_classification_are_identical_across_drivers() {
    for setup in setups() {
        let threaded = run_luck_pinned(setup, Driver::Threaded);
        let polled = run_luck_pinned(setup, Driver::Polled);
        assert_eq!(
            threaded, polled,
            "threaded and polled drivers classified luck differently ({setup:?})"
        );
        if cfg!(target_os = "linux") {
            let reactor = run_luck_pinned(setup, Driver::Reactor);
            assert_eq!(threaded, reactor, "reactor classified luck differently ({setup:?})");
        }
        // Synchrony without contention: every op resolves in the
        // variant's canonical round count.
        for (reg, kind, _, rounds, fast) in &threaded {
            match setup {
                Setup::TwoRound(_) if *kind == OpKind::Write => {
                    assert_eq!((*rounds, *fast), (2, false), "{setup:?} {reg} {kind:?}");
                }
                _ => {
                    assert_eq!((*rounds, *fast), (1, true), "{setup:?} {reg} {kind:?}");
                }
            }
        }
    }
}

#[test]
fn per_op_traffic_attribution_is_real_under_every_driver() {
    // Every driver records real per-op msgs/bytes in the history — the
    // polled append path used to hardcode zeros while the threaded one
    // never counted at all. An op needs at least one full round to its
    // quorum, so each record must attribute at least quorum-many
    // messages (sends + acks); exact totals legitimately differ between
    // drivers, because *when* a late ack is pumped decides which op (if
    // any) absorbs it.
    let setup = Setup::Atomic(Params::new(2, 1, 1, 0).unwrap());
    for driver in [Driver::Threaded, Driver::Polled] {
        let mut store = builder(setup, driver, Transport::Channel, false).build();
        let handles: Vec<_> = RegisterId::all(REGISTERS)
            .map(|reg| store.register(reg).expect("fresh handle"))
            .collect();
        for h in &handles {
            h.write(Value::from_u64(h.id().0 as u64 + 1)).expect("write completes");
            h.read(0).expect("read completes");
        }
        let history = store.history();
        assert_eq!(history.ops.len(), REGISTERS * 2);
        for rec in &history.ops {
            // S = 2t + b + 1 = 6 here; one round is S sends plus at
            // least a quorum (S − t = 4) of acks back.
            assert!(
                rec.msgs >= 10,
                "{driver:?} attributes a full round to op {:?} (got {})",
                rec.id,
                rec.msgs
            );
            assert!(rec.bytes > 0, "{driver:?} attributes bytes to op {:?}", rec.id);
        }
        store.shutdown();
    }
}

#[test]
fn polled_driver_multiplexes_registers_on_one_worker() {
    // Force every session onto a single worker: concurrency must come
    // purely from the poll loop's multiplexing, not thread counts.
    let setup = Setup::Atomic(Params::new(1, 0, 1, 0).unwrap());
    let mut store = NetStore::builder(setup, net_cfg(4))
        .registers(REGISTERS)
        .shards(1)
        .driver(Driver::Polled)
        .build();
    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).expect("fresh handle")).collect();
    // Submit every register's write before waiting on any: with a
    // blocking one-job-at-a-time worker this would serialize; the polled
    // worker runs them concurrently and all complete.
    let tickets: Vec<_> =
        handles.iter().map(|h| h.invoke_write(Value::from_u64(100 + h.id().0 as u64))).collect();
    for t in tickets {
        t.wait().expect("multiplexed write completes");
    }
    for h in &handles {
        assert_eq!(h.read(0).unwrap().value.as_u64(), Some(100 + h.id().0 as u64));
    }
    store.check_atomicity().unwrap();
    store.shutdown();
}
