//! Theorems 3 and 4 (§3.4): lucky operations are fast up to their
//! thresholds, and the thresholds trade off exactly as `fw + fr = t − b`.

use lucky_atomic::core::{ClusterConfig, SimCluster};
use lucky_atomic::types::{Params, ProcessId, ReaderId, ServerId, Value};

/// Every (t, b, fw, fr) configuration on the tight bound used across the
/// fast-path tests.
fn bound_configs() -> Vec<Params> {
    let mut out = Vec::new();
    for (t, b) in [(1, 0), (1, 1), (2, 0), (2, 1), (2, 2), (3, 1), (3, 2)] {
        for fw in 0..=(t - b) {
            let fr = t - b - fw;
            out.push(Params::new(t, b, fw, fr).unwrap());
        }
    }
    out
}

#[test]
fn theorem3_lucky_writes_fast_up_to_fw_crashes() {
    for params in bound_configs() {
        for crashes in 0..=params.fw() {
            let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
            for i in 0..crashes {
                c.crash_server(i as u16);
            }
            let w = c.write(Value::from_u64(1));
            assert!(
                w.fast && w.rounds == 1,
                "{params}: lucky write must be fast with {crashes} ≤ fw crashes"
            );
            c.check_atomicity().unwrap();
        }
    }
}

#[test]
fn theorem3_lucky_writes_complete_slow_beyond_fw() {
    for params in bound_configs() {
        if params.fw() == params.t() {
            continue; // cannot exceed fw within the fault budget
        }
        let crashes = params.fw() + 1;
        let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
        for i in 0..crashes {
            c.crash_server(i as u16);
        }
        let w = c.write(Value::from_u64(1));
        assert!(
            !w.fast && w.rounds == 3,
            "{params}: write with {crashes} > fw crashes must use the 3-round slow path"
        );
        c.check_atomicity().unwrap();
    }
}

#[test]
fn theorem4_lucky_reads_fast_up_to_fr_crashes() {
    for params in bound_configs() {
        for crashes in 0..=params.fr() {
            // After a fast write...
            let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
            let w = c.write(Value::from_u64(1));
            assert!(w.fast);
            for i in 0..crashes {
                c.crash_server(i as u16);
            }
            let r = c.read(ReaderId(0));
            assert!(
                r.fast && r.rounds == 1,
                "{params}: lucky read must be fast with {crashes} ≤ fr crashes"
            );
            assert_eq!(r.value.as_u64(), Some(1));
            c.check_atomicity().unwrap();
        }
    }
}

#[test]
fn theorem4_lucky_reads_fast_after_slow_writes_too() {
    // The fastvw path: a slow (3-round) write leaves vw at S − t servers;
    // a lucky read confirms it at b + 1 of them.
    for params in bound_configs() {
        let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
        // Force the slow write path by holding one PW message per missing
        // fast ack.
        let missing = params.fw() + 1;
        if missing > params.t() {
            continue;
        }
        for i in 0..missing {
            c.world_mut().hold(ProcessId::Writer, ProcessId::Server(ServerId(i as u16)));
        }
        let w = c.write(Value::from_u64(1));
        assert!(!w.fast, "{params}: write was meant to go slow");
        // Release: the system is now failure-free and quiet.
        c.world_mut().release_all_from(ProcessId::Writer);
        c.run_for(1_000);
        for crashes in 0..=params.fr() {
            for i in 0..crashes {
                c.crash_server(i as u16);
            }
            let r = c.read(ReaderId(0));
            assert!(r.fast, "{params}: lucky read after slow write, {crashes} ≤ fr crashes");
            assert_eq!(r.value.as_u64(), Some(1));
        }
        c.check_atomicity().unwrap();
    }
}

#[test]
fn reads_under_contention_are_not_guaranteed_fast_but_stay_atomic() {
    let params = Params::new(2, 1, 0, 1).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous(params), 2);
    c.write(Value::from_u64(1));
    for i in 2..=20u64 {
        let w = c.invoke_write(Value::from_u64(i));
        let r = c.invoke_read(ReaderId((i % 2) as u16));
        c.world_mut().run_until_all_complete(&[w, r]).unwrap();
    }
    c.check_atomicity().unwrap();
}

#[test]
fn asynchrony_unlucks_operations_but_preserves_atomicity() {
    for seed in 0..20 {
        let params = Params::new(2, 1, 1, 0).unwrap();
        let mut c = SimCluster::new(ClusterConfig::asynchronous(params).with_seed(seed), 2);
        for i in 1..=10u64 {
            c.write(Value::from_u64(i));
            let r = c.read(ReaderId((i % 2) as u16));
            assert_eq!(r.value.as_u64(), Some(i), "seed {seed}");
        }
        c.check_atomicity().unwrap();
    }
}

#[test]
fn fast_write_stores_at_s_minus_fw_and_fast_read_leaves_no_trace() {
    // §3.1: "a fast READ rd must itself leave behind enough information"
    // — i.e. it sends nothing after round 1. We verify via message count:
    // a fast read exchanges exactly 2S messages (S requests + S replies).
    let params = Params::new(2, 1, 0, 1).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
    c.write(Value::from_u64(1));
    let r = c.read(ReaderId(0));
    assert!(r.fast);
    assert_eq!(r.msgs, 2 * params.server_count() as u64);
}

#[test]
fn slow_write_message_complexity_is_three_rounds() {
    let params = Params::new(2, 1, 0, 1).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
    c.crash_server(0); // fw = 0: any crash forces the slow path
    let w = c.write(Value::from_u64(1));
    assert!(!w.fast);
    // 3 rounds × S sends; replies from the 5 alive servers, except the
    // final round's last ack, which lands after the write completed at
    // quorum and is no longer attributed to the operation.
    let s = params.server_count() as u64;
    let quorum = (params.server_count() - params.t()) as u64;
    assert_eq!(w.msgs, 3 * s + 2 * (s - 1) + quorum);
}

#[test]
fn values_survive_sequences_of_mixed_luck() {
    // Alternate lucky and unlucky phases; the register never loses data.
    let params = Params::new(2, 1, 1, 0).unwrap();
    let mut c = SimCluster::new(ClusterConfig::synchronous(params), 1);
    for i in 1..=30u64 {
        if i % 3 == 0 {
            // Unlucky phase: gate a couple of PW links for this write.
            c.world_mut().hold(ProcessId::Writer, ProcessId::Server(ServerId(0)));
            c.world_mut().hold(ProcessId::Writer, ProcessId::Server(ServerId(1)));
        }
        c.write(Value::from_u64(i));
        c.world_mut().release_all_from(ProcessId::Writer);
        let r = c.read(ReaderId(0));
        assert_eq!(r.value.as_u64(), Some(i));
    }
    c.check_atomicity().unwrap();
}
