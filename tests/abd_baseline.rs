//! Baseline sanity: the ABD register (crash-only) against which the
//! benchmark tables compare, and the structural comparison facts the
//! paper's introduction cites (ABD reads always pay two rounds; lucky
//! reads pay one).

use lucky_atomic::baselines::abd::{AbdCluster, AbdConfig};
use lucky_atomic::core::{ClusterConfig, SimCluster};
use lucky_atomic::types::{Params, ReaderId, Value};
use proptest::prelude::*;

#[test]
fn abd_round_counts_are_constant() {
    for t in 1..=4usize {
        let mut c = AbdCluster::new(AbdConfig::synchronous(t), 1);
        for i in 1..=5u64 {
            let w = c.write(Value::from_u64(i));
            assert_eq!(w.rounds, 1, "ABD writes are one round at t={t}");
            let r = c.read(ReaderId(0));
            assert_eq!(r.rounds, 2, "ABD reads are two rounds at t={t}");
            assert_eq!(r.value.as_u64(), Some(i));
        }
        c.check_atomicity().unwrap();
    }
}

#[test]
fn lucky_reads_beat_abd_reads_in_rounds_and_latency() {
    // Same synchronous network, same t: the lucky read takes one round,
    // ABD's takes two — and wall-clock (virtual) latency reflects it,
    // modulo the lucky round-1 timer which waits out the synchrony bound.
    let t = 2;
    let params = Params::new(t, 0, 1, 1).unwrap();
    let mut lucky = SimCluster::new(ClusterConfig::synchronous(params), 1);
    let mut abd = AbdCluster::new(AbdConfig::synchronous(t), 1);
    lucky.write(Value::from_u64(1));
    abd.write(Value::from_u64(1));
    let lr = lucky.read(ReaderId(0));
    let ar = abd.read(ReaderId(0));
    assert_eq!(lr.rounds, 1);
    assert_eq!(ar.rounds, 2);
    assert_eq!(lr.value.as_u64(), ar.value.as_u64());
}

#[test]
fn abd_handles_partial_writes_via_reader_writeback() {
    use lucky_atomic::types::{ProcessId, ServerId};
    let mut c = AbdCluster::new(AbdConfig::synchronous(2), 2);
    // The writer reaches only a bare majority.
    c.world_mut().hold(ProcessId::Writer, ProcessId::Server(ServerId(0)));
    c.world_mut().hold(ProcessId::Writer, ProcessId::Server(ServerId(1)));
    c.write(Value::from_u64(1));
    // Crash two of the three holders *after* a first read has written the
    // value back to a majority — the value must survive.
    let r1 = c.read(ReaderId(0));
    assert_eq!(r1.value.as_u64(), Some(1));
    c.crash_server(2);
    c.crash_server(3);
    let r2 = c.read(ReaderId(1));
    assert_eq!(r2.value.as_u64(), Some(1), "write-back preserved the value");
    c.check_atomicity().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// ABD stays atomic under random asynchrony, crashes and interleaved
    /// reads — the reference implementation for the checker itself.
    #[test]
    fn abd_atomic_under_random_schedules(
        t in 1usize..4,
        seed in 0u64..10_000,
        crashes in 0usize..3,
        ops in proptest::collection::vec((0u8..3, 0u16..2), 1..20),
    ) {
        let mut c = AbdCluster::new(AbdConfig::asynchronous(t).with_seed(seed), 2);
        for i in 0..crashes.min(t) {
            c.crash_server(i as u16);
        }
        let mut next = 1u64;
        for (kind, r) in ops {
            match kind {
                0 => {
                    let op = c.invoke_write(Value::from_u64(next));
                    next += 1;
                    c.run_until_complete(op).unwrap();
                }
                1 => {
                    let op = c.invoke_read(ReaderId(r));
                    c.run_until_complete(op).unwrap();
                }
                _ => {
                    let w = c.invoke_write(Value::from_u64(next));
                    next += 1;
                    let rd = c.invoke_read(ReaderId(r));
                    c.world_mut().run_until_all_complete(&[w, rd]).unwrap();
                }
            }
        }
        c.check_atomicity().map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }
}
