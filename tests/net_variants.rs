//! All three protocol variants on the threaded `lucky-net` runtime.
//!
//! Until the round-engine refactor the threaded cluster could only run
//! the atomic algorithm; these tests pin down that the two-round
//! (App. C) and regular (App. D) variants now run on real threads too,
//! selected through the same [`Setup`] enum the simulator uses.
//!
//! Wall-clock timing on a loaded CI machine is not deterministic, so the
//! assertions stick to structural facts: values read, round counts that
//! hold in every schedule, and liveness within the failure budget.

use lucky_atomic::core::Setup;
use lucky_atomic::net::{NetCluster, NetConfig};
use lucky_atomic::types::{Params, TwoRoundParams, Value};
use std::time::Duration;

fn fast_cfg() -> NetConfig {
    let mut cfg = NetConfig::for_latency(Duration::from_micros(50), Duration::from_micros(500));
    cfg.seed = 1;
    cfg
}

#[test]
fn atomic_variant_via_setup_enum() {
    let setup = Setup::Atomic(Params::new(1, 0, 1, 0).unwrap());
    let mut cluster = NetCluster::builder(setup, fast_cfg()).build();
    let mut writer = cluster.take_writer().unwrap();
    let mut reader = cluster.take_reader(0).unwrap();
    writer.write(Value::from_u64(7)).unwrap();
    let r = reader.read().unwrap();
    assert_eq!(r.value.as_u64(), Some(7));
    cluster.shutdown();
}

#[test]
fn two_round_variant_runs_on_threads() {
    // t = 1, b = 0, fr = 1 → S = 3, quorum 2.
    let params = TwoRoundParams::new(1, 0, 1).unwrap();
    let mut cluster = NetCluster::builder(params, fast_cfg()).build();
    let mut writer = cluster.take_writer().unwrap();
    let mut reader = cluster.take_reader(0).unwrap();
    for i in 1..=5u64 {
        let w = writer.write(Value::from_u64(i)).unwrap();
        // Structural invariant of App. C: every WRITE takes exactly two
        // rounds and is never fast, on any schedule.
        assert_eq!((w.rounds, w.fast), (2, false));
        let r = reader.read().unwrap();
        assert_eq!(r.value.as_u64(), Some(i));
    }
    assert!(cluster.stats().messages > 0);
    cluster.shutdown();
}

#[test]
fn two_round_variant_survives_crash_within_t() {
    let params = TwoRoundParams::new(1, 0, 1).unwrap();
    let mut cluster = NetCluster::builder(params, fast_cfg()).crashed(0).build();
    let mut writer = cluster.take_writer().unwrap();
    let mut reader = cluster.take_reader(0).unwrap();
    let w = writer.write(Value::from_u64(3)).unwrap();
    assert_eq!(w.rounds, 2);
    let r = reader.read().unwrap();
    assert_eq!(r.value.as_u64(), Some(3));
    cluster.shutdown();
}

#[test]
fn regular_variant_runs_on_threads() {
    // Appendix D thresholds: t = 1, b = 0 → fw = 1, fr = 1, S = 3.
    let params = Params::trading_reads(1, 0).unwrap();
    let mut cluster = NetCluster::builder(Setup::Regular(params), fast_cfg()).readers(2).build();
    let mut writer = cluster.take_writer().unwrap();
    let mut r0 = cluster.take_reader(0).unwrap();
    let mut r1 = cluster.take_reader(1).unwrap();
    for i in 1..=5u64 {
        writer.write(Value::from_u64(i)).unwrap();
        assert_eq!(r0.read().unwrap().value.as_u64(), Some(i));
        assert_eq!(r1.read().unwrap().value.as_u64(), Some(i));
    }
    cluster.shutdown();
}

#[test]
fn regular_variant_reads_despite_fr_crash() {
    let params = Params::trading_reads(1, 0).unwrap();
    let mut cluster = NetCluster::builder(Setup::Regular(params), fast_cfg()).crashed(2).build();
    let mut writer = cluster.take_writer().unwrap();
    let mut reader = cluster.take_reader(0).unwrap();
    writer.write(Value::from_u64(9)).unwrap();
    // fr = t = 1: one crash leaves the READ live (and, in a synchronous
    // schedule, fast — not asserted here, wall clocks are not synchrony).
    let r = reader.read().unwrap();
    assert_eq!(r.value.as_u64(), Some(9));
    cluster.shutdown();
}

#[test]
fn setup_conversions_pick_the_expected_variant() {
    assert!(matches!(Setup::from(Params::new(1, 0, 1, 0).unwrap()), Setup::Atomic(_)));
    assert!(matches!(Setup::from(TwoRoundParams::new(1, 0, 1).unwrap()), Setup::TwoRound(_)));
}
