//! Fault injection: crash and Byzantine servers attacking the register.
//!
//! Sweeps every Byzantine behaviour in the catalogue against a cluster
//! with t = 2, b = 1 and shows that reads keep returning the correct
//! value while the fault budget is respected — and reports how each
//! attack degrades the fast path.
//!
//! Run with: `cargo run --example fault_injection`

use lucky_atomic::core::byz::{ForgeValue, InflateTs, Mute, RandomNoise, SplitBrain, StaleEcho};
use lucky_atomic::core::runtime::ServerCore;
use lucky_atomic::core::{ClusterConfig, SimCluster};
use lucky_atomic::types::{Params, ProcessId, ReaderId, Seq, TsVal, Value};

fn attack(name: &str, make: impl Fn() -> Box<dyn ServerCore>) {
    let params = Params::new(2, 1, 0, 1).unwrap(); // fast reads survive 1 failure
    let mut cluster = SimCluster::new(ClusterConfig::synchronous(params), 1);
    // Server 3 is malicious (within the budget b = 1).
    cluster.install_byzantine(3, make());

    let mut fast_reads = 0;
    for i in 1..=10u64 {
        cluster.write(Value::from_u64(i));
        let r = cluster.read(ReaderId(0));
        assert_eq!(r.value.as_u64(), Some(i), "attack {name} corrupted a read");
        if r.fast {
            fast_reads += 1;
        }
    }
    cluster.check_atomicity().expect("attack broke atomicity");
    println!("  {name:<12} 10/10 reads correct, {fast_reads}/10 fast — atomicity holds");
}

fn main() {
    println!("Byzantine attack sweep (t=2, b=1, S=6, one malicious server):");
    attack("forge-value", || Box::new(ForgeValue::new(TsVal::new(Seq(40), Value::from_u64(666)))));
    attack("inflate-ts", || Box::new(InflateTs::new(1_000)));
    attack("stale-echo", || Box::new(StaleEcho::new()));
    attack("mute", || Box::new(Mute::new()));
    attack("random-noise", || Box::new(RandomNoise::new(7, 128)));
    attack("split-brain", || {
        Box::new(SplitBrain::new([ProcessId::Writer])) // lies to all readers
    });

    // Crashes on top of the malicious server: the full budget t = 2,
    // of which b = 1 malicious.
    println!("\nfull fault budget (1 Byzantine + 1 crash):");
    let params = Params::new(2, 1, 0, 1).unwrap();
    let mut cluster = SimCluster::new(ClusterConfig::synchronous(params), 1);
    cluster.install_byzantine(0, Box::new(InflateTs::new(500)));
    cluster.crash_server(1);
    for i in 1..=5u64 {
        cluster.write(Value::from_u64(i));
        let r = cluster.read(ReaderId(0));
        assert_eq!(r.value.as_u64(), Some(i));
    }
    cluster.check_atomicity().expect("atomicity");
    println!("  5/5 reads correct under 1 Byzantine + 1 crash — atomicity holds");
}
