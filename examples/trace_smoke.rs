//! Tracing smoke run (also wired into CI): the luck-o-meter end to end.
//!
//! Three phases over the threaded TCP store, tracing enabled:
//!
//! 1. **Quiet run** — synchrony, no contention: asserts the fast path
//!    dominates (>90% lucky reads) and prints the trace rollup;
//! 2. **Forced fallback** — the fast-path predicates are disabled
//!    (`ProtocolConfig::slow_only`), the deterministic stand-in for the
//!    delay/contention regimes that organically push ops onto the slow
//!    path: asserts a nonzero slow-path count;
//! 3. **Forced timeout** — two of three servers crashed, no quorum can
//!    form: the op fails at its deadline and the flight recorder dumps
//!    the op's span events automatically. The dump is printed — the
//!    post-mortem you get for free when an op times out in production.
//!
//! ```sh
//! cargo run --release --example trace_smoke
//! ```

use lucky_atomic::net::{NetConfig, NetError, NetStore, Transport};
use lucky_atomic::trace::TraceConfig;
use lucky_atomic::types::{Params, RegisterId, Value};
use std::time::Duration;

fn cfg(latency: (u64, u64), timer_millis: u64) -> NetConfig {
    NetConfig {
        min_latency: Duration::from_micros(latency.0),
        max_latency: Duration::from_micros(latency.1),
        seed: 3,
        timer: Duration::from_millis(timer_millis),
    }
}

fn quiet_run() {
    let params = Params::new(1, 0, 1, 0).expect("valid params");
    // Latency well inside the 10ms timer: the fast path governs.
    let mut store = NetStore::builder(params, cfg((50, 300), 10))
        .transport(Transport::Tcp)
        .trace(TraceConfig::enabled())
        .build();
    let h = store.register(RegisterId(0)).expect("fresh handle");
    h.write(Value::from_u64(1)).expect("write completes");
    for _ in 0..20 {
        h.read(0).expect("read completes");
    }
    let report = store.trace();
    assert!(report.fast_reads > 0, "a quiet run has lucky reads");
    assert!(
        report.lucky_read_ratio() > 0.90,
        "synchrony without contention keeps >90% of reads lucky, got {:.1}%",
        100.0 * report.lucky_read_ratio()
    );
    assert_eq!(report.timeouts, 0, "nothing timed out on the quiet run");
    println!("--- phase 1: quiet run (fast path governs) ---\n{report}");
    drop(h);
    store.shutdown();
}

fn fallback_run() {
    let params = Params::new(1, 0, 1, 0).expect("valid params");
    // Over loopback an injected delay alone does not break luck — the
    // session still settles round 1 once quorum acks arrive, however
    // late — so force the fallback deterministically: `slow_only`
    // disables the fast-path predicates and every op pays the
    // multi-round slow path (atomicity is never at risk, only latency).
    let mut store = NetStore::builder(params, cfg((2_000, 4_000), 1))
        .transport(Transport::Tcp)
        .protocol(lucky_atomic::core::ProtocolConfig::slow_only(100))
        .trace(TraceConfig::enabled())
        .build();
    let h = store.register(RegisterId(0)).expect("fresh handle");
    h.write(Value::from_u64(2)).expect("write completes");
    for _ in 0..5 {
        h.read(0).expect("read completes");
    }
    let report = store.trace();
    assert!(report.slow_ops() > 0, "the disabled fast path shows up as slow ops");
    assert_eq!(report.fast_reads, 0, "no read is lucky with the predicate off");
    println!("--- phase 2: forced fallback (slow path absorbs every op) ---\n{report}");
    drop(h);
    store.shutdown();
}

fn timeout_dump() {
    let params = Params::new(1, 0, 1, 0).expect("valid params");
    // S = 3 and quorums need 2: with two servers crashed the write can
    // never complete, and fails at its deadline (max(200×timer, 1s)).
    let mut store = NetStore::builder(params, cfg((50, 300), 5))
        .crashed(1)
        .crashed(2)
        .trace(TraceConfig::enabled())
        .build();
    let h = store.register(RegisterId(0)).expect("fresh handle");
    let err = h.write(Value::from_u64(3)).expect_err("no quorum can form");
    assert_eq!(err, NetError::TimedOut);
    let report = store.trace();
    assert_eq!(report.timeouts, 1);
    let dump = report.last_dump.as_deref().expect("the failure dumped the flight recorder");
    assert!(dump.contains("invoke WRITE"), "dump replays the op's span");
    println!("--- phase 3: forced timeout (automatic flight-recorder dump) ---\n{dump}");
    drop(h);
    store.shutdown();
}

fn main() {
    println!(
        "trace smoke: per-op spans, latency histograms and the luck-o-meter \
         over loopback TCP\n"
    );
    quiet_run();
    fallback_run();
    timeout_dump();
    println!("\ntrace smoke clean: lucky ops counted, fallback counted, timeout dumped");
}
