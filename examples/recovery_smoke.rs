//! Crash-restart recovery smoke run (also wired into CI).
//!
//! For **all three protocol variants**, runs a durable multi-register
//! store through a mid-run server crash + restart on **both runtimes**:
//!
//! * the deterministic simulator ([`SimStore`]), where the restart
//!   schedule is scripted against virtual time;
//! * the threaded runtime over **real loopback TCP** ([`NetStore`]),
//!   where the crash severs the server's socket and the restart
//!   re-binds its listener on a fresh port.
//!
//! Each run forces the recovered server back into every quorum by then
//! crashing `t` *other* servers — with exactly `t` down, an operation
//! needs an ack from every remaining server, so the reads that follow
//! can only be correct if the restarted server replayed its
//! `lucky-log` state (everything it acked before the crash, persisted
//! *before* the ack left the node). Asserts checker-clean histories,
//! correct values, and a nonzero `recoveries` count on every variant.
//!
//! ```sh
//! cargo run --release --example recovery_smoke
//! ```

use lucky_atomic::core::{Setup, StoreConfig};
use lucky_atomic::log::TempDir;
use lucky_atomic::net::{NetConfig, NetStore, Transport};
use lucky_atomic::types::{Params, RegisterId, TwoRoundParams, Value};
use std::time::Duration;

const REGISTERS: usize = 2;

/// The three write rounds: before the crash, while the server is down,
/// and after the restart with the recovered server quorum-critical.
fn value(round: u64, reg: RegisterId) -> Value {
    Value::from_u64(round * 100 + reg.0 as u64)
}

fn variants() -> [(&'static str, Setup); 3] {
    [
        ("atomic (§3)", Setup::Atomic(Params::new(2, 1, 1, 0).expect("valid params"))),
        (
            "two-round (App. C)",
            Setup::TwoRound(TwoRoundParams::new(2, 1, 1).expect("valid params")),
        ),
        ("regular (App. D)", Setup::Regular(Params::trading_reads(2, 1).expect("valid params"))),
    ]
}

fn check(name: &str, setup: Setup, store_check: impl FnOnce() -> bool) {
    assert!(store_check(), "{name} ({setup:?}): history is checker-clean across the restart");
}

/// Scripted crash/restart on the simulator: deterministic, virtual-time.
fn run_sim(name: &str, setup: Setup) -> (u64, u64) {
    let dir = TempDir::new("recovery-smoke-sim");
    let cfg = match setup {
        Setup::Atomic(p) => StoreConfig::synchronous(p),
        Setup::TwoRound(p) => StoreConfig::synchronous_two_round(p),
        Setup::Regular(p) => StoreConfig::synchronous_regular(p),
    };
    let mut store = cfg.registers(REGISTERS).durable(dir.path()).build_sim();
    let n = store.server_count() as u16;

    for reg in RegisterId::all(REGISTERS) {
        store.register(reg).write(value(1, reg));
    }
    store.crash_server(0);
    for reg in RegisterId::all(REGISTERS) {
        store.register(reg).write(value(2, reg));
    }
    store.restart_server(0); // replays its log: everything it acked in round 1
    store.crash_server(n - 1);
    store.crash_server(n - 2); // t = 2 down: server 0 is now in every quorum
    for reg in RegisterId::all(REGISTERS) {
        store.register(reg).write(value(3, reg));
        let r = store.register(reg).read(0);
        assert_eq!(r.value, value(3, reg), "{name}: read through the recovered server");
    }

    check(name, setup, || match setup {
        Setup::Regular(_) => store.check_regularity().is_ok(),
        _ => store.check_atomicity().is_ok(),
    });
    let (recoveries, log_bytes) = (store.recoveries(), store.log_bytes());
    assert!(recoveries > 0, "{name}: the restarted server replayed at least one log");
    assert!(log_bytes > 0, "{name}: committed state was persisted");
    (recoveries, log_bytes)
}

/// The same schedule over real loopback sockets: the crash severs the
/// server's router sink, the restart re-binds its listener.
fn run_tcp(name: &str, setup: Setup) -> lucky_atomic::net::NetStats {
    let dir = TempDir::new("recovery-smoke-tcp");
    let cfg = NetConfig {
        min_latency: Duration::from_micros(100),
        max_latency: Duration::from_micros(400),
        seed: 11,
        timer: Duration::from_millis(8),
    };
    let mut store = NetStore::builder(setup, cfg)
        .registers(REGISTERS)
        .transport(Transport::Tcp)
        .durable(dir.path())
        .build();
    let n = setup.server_count() as u16;
    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).expect("fresh handle")).collect();

    for h in &handles {
        h.write(value(1, h.id())).expect("round-1 write completes");
    }
    store.crash_server(0);
    for h in &handles {
        h.write(value(2, h.id())).expect("write completes with one server down");
    }
    store.restart_server(0);
    store.crash_server(n - 1);
    store.crash_server(n - 2);
    for h in &handles {
        h.write(value(3, h.id())).expect("write through the recovered server");
        let r = h.read(0).expect("read through the recovered server");
        assert_eq!(r.value, value(3, h.id()), "{name}: recovered server serves correct state");
    }

    check(name, setup, || match setup {
        Setup::Regular(_) => store.check_regularity().is_ok(),
        _ => store.check_atomicity().is_ok(),
    });
    let stats = store.stats();
    assert!(stats.recoveries > 0, "{name}: the restarted server replayed at least one log");
    assert!(stats.log_bytes > 0, "{name}: committed state was persisted");
    store.shutdown();
    stats
}

fn main() {
    println!(
        "recovery smoke: {REGISTERS} registers, durable servers, mid-run crash + restart of \
         server 0, then t more crashes so the recovered server is quorum-critical\n"
    );
    for (name, setup) in variants() {
        let (rec, bytes) = run_sim(name, setup);
        println!("{name:<20} sim: {rec} log replays / {bytes} log B");
        let stats = run_tcp(name, setup);
        println!("{name:<20} tcp: {stats}");
    }
    println!("\nall three variants checker-clean across crash-restart on both runtimes");
}
