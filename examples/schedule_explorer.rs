//! Model-check a tiny deployment, then watch a violating schedule appear
//! the moment the paper's bound is crossed.
//!
//! Demonstrates `lucky-explore` (bounded exhaustive schedule exploration +
//! randomized schedule walks) and the simulator's message tracing.
//!
//! Run with: `cargo run --release --example schedule_explorer`

use lucky_atomic::core::ProtocolConfig;
use lucky_atomic::explore::{explore, random_walks, ByzKind, ExploreConfig, Scenario};
use lucky_atomic::types::{Params, ProcessId, ReaderId, Value};

fn main() {
    // --- 1. Exhaustive: every schedule of write ∥ read on S = 3 --------
    let params = Params::new(1, 0, 1, 0).unwrap(); // crash-only, S = 3
    let scenario = Scenario::new(params).write(Value::from_u64(1)).reads(0, 1);
    println!("exhaustively exploring write ∥ read over S = 3 …");
    let report = explore(&scenario, &ExploreConfig::default());
    println!(
        "  {} distinct states, {} transitions, coverage: {} — violations: {}",
        report.states,
        report.transitions,
        if report.truncated { "bounded" } else { "exhaustive" },
        report.violations.len()
    );
    assert!(report.violations.is_empty());

    // --- 2. Beyond the bound: the machine finds the counterexample -----
    // t = 1, b = 1 forces fw = fr = 0 (Proposition 2). Pretend fw = 1
    // works, give the adversary the proof's split-brain server, and let
    // random schedule walks hunt.
    let params = Params::new_unchecked(1, 1, 1, 0);
    let protocol = ProtocolConfig {
        fastpw_override: Some(params.naive_fastpw_threshold()),
        ..ProtocolConfig::default()
    };
    let scenario = Scenario::new(params)
        .with_protocol(protocol)
        .write(Value::from_u64(1))
        .reads(0, 1)
        .reads(1, 1)
        .byzantine(1, ByzKind::SplitBrain(vec![ProcessId::Writer, ProcessId::Reader(ReaderId(0))]));
    println!("\nhunting a violating schedule for fw = 1 > t − b = 0 …");
    let report = random_walks(&scenario, 50_000, 200, 42);
    let trace = report.violations.first().expect("Proposition 2 says this must exist");
    println!("  found after {} walks; the schedule's observable events:", report.states);
    for ev in &trace.events {
        println!("    {ev}");
    }
    println!("  checker says:");
    for v in &trace.violations {
        println!("    - {v}");
    }

    // --- 3. Message tracing on the simulator ---------------------------
    use lucky_atomic::core::{ClusterConfig, SimCluster};
    let params = Params::new(1, 0, 1, 0).unwrap();
    let mut cluster = SimCluster::new(ClusterConfig::synchronous(params), 1);
    cluster.world_mut().enable_trace();
    cluster.write(Value::from_u64(7));
    cluster.read(ReaderId(0));
    println!("\nmessage trace of one fast write + one fast read (S = 3):");
    for entry in cluster.world().trace() {
        println!("  {entry}");
    }
    println!(
        "\n{} messages total — 2 round-trips of S messages each, exactly the \
         paper's fast-path complexity ✓",
        cluster.world().trace().len()
    );
}
