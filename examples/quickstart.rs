//! Quickstart: a robust atomic register with fast lucky operations.
//!
//! Deploys the paper's main algorithm (t = 2 failures, b = 1 Byzantine,
//! S = 2t + b + 1 = 6 servers) on the deterministic simulator, then walks
//! through the headline behaviours: one-round lucky operations, graceful
//! degradation under crashes, and the atomicity check.
//!
//! Run with: `cargo run --example quickstart`

use lucky_atomic::core::{ClusterConfig, SimCluster};
use lucky_atomic::types::{Params, ReaderId, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // fw + fr = t - b = 1: here fast writes survive one failure (fw = 1)
    // and fast reads are guaranteed only failure-free (fr = 0).
    let params = Params::new(2, 1, 1, 0)?;
    println!("deploying lucky atomic storage: {params}");

    let mut cluster = SimCluster::new(ClusterConfig::synchronous(params), 2);

    // A lucky write: synchronous network, no failures -> one round-trip.
    let w = cluster.write(Value::from_u64(1));
    println!(
        "WRITE(v1): rounds={} fast={} latency={}µs msgs={}",
        w.rounds, w.fast, w.latency, w.msgs
    );
    assert!(w.fast);

    // A lucky read: one round-trip, no write-back.
    let r = cluster.read(ReaderId(0));
    println!("READ() = {}: rounds={} fast={} latency={}µs", r.value, r.rounds, r.fast, r.latency);
    assert!(r.fast);
    assert_eq!(r.value.as_u64(), Some(1));

    // One crash is within fw: writes stay fast.
    cluster.crash_server(5);
    let w = cluster.write(Value::from_u64(2));
    println!("WRITE(v2) with 1 crash: rounds={} fast={}", w.rounds, w.fast);
    assert!(w.fast);

    // A second crash exceeds fw: the write falls back to the slow path
    // (PW + two W rounds) but still completes — wait-freedom.
    cluster.crash_server(4);
    let w = cluster.write(Value::from_u64(3));
    println!("WRITE(v3) with 2 crashes: rounds={} fast={}", w.rounds, w.fast);
    assert!(!w.fast);
    assert_eq!(w.rounds, 3);

    // Reads stay correct too. (They may even still be fast here: the slow
    // write's third round installed `vw` at every live server, so the
    // `fastvw` predicate holds — fr bounds the guarantee, not the luck.)
    let r = cluster.read(ReaderId(1));
    println!("READ() with 2 crashes = {}: rounds={} fast={}", r.value, r.rounds, r.fast);
    assert_eq!(r.value.as_u64(), Some(3));

    // The whole history satisfies the four atomicity conditions of §2.2.
    cluster.check_atomicity()?;
    println!("history of {} operations is atomic ✓", cluster.history().ops.len());
    Ok(())
}
