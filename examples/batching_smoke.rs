//! Wire-message batching smoke run (also wired into CI).
//!
//! Runs the same 8-register mixed read/write workload on the threaded
//! `NetStore` twice — batching disabled, then enabled with
//! `max_msgs = 16` — and reports the router's wire-message economics:
//! wire messages per completed operation, parts per batch, and the
//! per-server breakdown. The run asserts the headline claim: batching
//! sends at least 2× fewer wire messages per operation on this workload,
//! while every register's history stays independently linearizable.
//!
//! ```sh
//! cargo run --release --example batching_smoke
//! ```

use lucky_atomic::net::{NetConfig, NetStats, NetStore};
use lucky_atomic::types::{BatchConfig, Params, RegisterId, ServerId, Value};
use std::time::Duration;

const REGISTERS: usize = 8;
const READERS_PER_REGISTER: usize = 2;
const ROUNDS: u64 = 6;

fn net_cfg() -> NetConfig {
    NetConfig {
        min_latency: Duration::from_micros(100),
        max_latency: Duration::from_micros(400),
        seed: 7,
        timer: Duration::from_millis(8),
    }
}

/// Run the workload and return `(stats, completed_ops)`.
fn run(batch: BatchConfig) -> (NetStats, u64) {
    let params = Params::new(2, 1, 1, 0).expect("valid params"); // S = 6
    let mut store = NetStore::builder(params, net_cfg())
        .registers(REGISTERS)
        .readers_per_register(READERS_PER_REGISTER)
        .shards(4)
        .batch(batch)
        .build();
    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).expect("fresh handle")).collect();

    let mut ops = 0u64;
    for round in 0..ROUNDS {
        // Mixed workload, submitted concurrently across all registers so
        // independent registers' traffic shares the wire: every write,
        // then every read, then wait for the whole wave.
        let mut tickets = Vec::new();
        for h in &handles {
            let v = 1 + h.id().0 as u64 * 1_000 + round;
            tickets.push(h.invoke_write(Value::from_u64(v)));
        }
        for h in &handles {
            for j in 0..READERS_PER_REGISTER as u16 {
                tickets.push(h.invoke_read(j));
            }
        }
        for t in tickets {
            t.wait().expect("failure-free run completes");
            ops += 1;
        }
    }

    store.check_atomicity().expect("every register independently linearizable");
    let stats = store.stats();
    store.shutdown();
    (stats, ops)
}

fn main() {
    let off = BatchConfig::disabled();
    // A generous coalescing window (well under the 8ms round-1 timer)
    // keeps the measured ratio stable even on a loaded CI machine.
    let on = BatchConfig::enabled(16).with_max_delay_micros(1_000);

    println!(
        "batching smoke: {REGISTERS} registers x ({ROUNDS} writes + {} reads), S = 6 servers\n",
        ROUNDS * READERS_PER_REGISTER as u64
    );
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "config", "ops", "wire msgs", "parts", "batches", "msgs/op"
    );

    let mut msgs_per_op = Vec::new();
    for (label, cfg) in [("batching off", off), ("batching on (max 16)", on)] {
        let (stats, ops) = run(cfg);
        let per_op = stats.messages as f64 / ops as f64;
        msgs_per_op.push(per_op);
        println!(
            "{label:<26} {ops:>10} {:>10} {:>10} {:>10} {per_op:>12.1}",
            stats.messages, stats.parts, stats.batches_sent
        );
        if cfg.enabled {
            println!(
                "{:<26} {:>10} {:>10} {:>10} {:>10} {:>12.1}",
                "  (mean parts/wire msg)",
                "",
                "",
                "",
                "",
                stats.msgs_per_batch()
            );
            println!("\nper-server wire traffic (batching on):");
            for s in 0..6u16 {
                let per = stats.server(ServerId(s));
                println!(
                    "  s{s}: {} wire msgs carrying {} parts ({} batches, {:.1} parts/msg)",
                    per.messages,
                    per.parts,
                    per.batches_sent,
                    per.msgs_per_batch()
                );
            }
        } else {
            assert_eq!(stats.messages, stats.parts, "disabled batching never coalesces");
            assert_eq!(stats.batches_sent, 0, "disabled batching sends no batch envelope");
        }
    }

    let ratio = msgs_per_op[0] / msgs_per_op[1];
    println!(
        "\nwire messages per op: {:.1} -> {:.1}  ({ratio:.1}x fewer)",
        msgs_per_op[0], msgs_per_op[1]
    );
    assert!(
        ratio >= 2.0,
        "batching must send >= 2x fewer wire messages per op on this workload, got {ratio:.2}x"
    );
    println!("OK: >= 2x fewer wire messages per completed operation");
}
