//! Epoll-reactor TCP smoke run (also wired into CI).
//!
//! Runs a high-concurrency workload over `Transport::Tcp` with the
//! **reactor driver**: each shard worker blocks in `epoll_wait` on its
//! listener, accepted connections and an eventfd job-wake, with session
//! timers folded into the epoll timeout — no sleep-capped polling. The
//! client side uses the **futures API** (`write_future` / `read_future`
//! awaited on the crate's std-only executor), so one caller thread holds
//! every operation in flight at once. Asserts:
//!
//! * a large burst (hundreds of registers, write + read each, all
//!   submitted before any is awaited) completes on a single reactor
//!   thread, checker-clean;
//! * per-op accounting is real: every completed `OpRecord` attributes
//!   nonzero wire messages and bytes;
//! * the reactor actually runs on epoll (nonzero wakeup count on Linux)
//!   and degrades to the polled loop elsewhere instead of failing.
//!
//! ```sh
//! cargo run --release --example reactor_smoke
//! ```

use lucky_atomic::net::exec::run_all;
use lucky_atomic::net::{Driver, NetConfig, NetStore, Transport};
use lucky_atomic::types::{Params, RegisterId, Value};
use std::time::{Duration, Instant};

const REGISTERS: usize = 800;
const SHARDS: usize = 1;

fn main() {
    let params = Params::new(1, 0, 1, 0).expect("valid params");
    let cfg = NetConfig {
        min_latency: Duration::from_micros(50),
        max_latency: Duration::from_micros(200),
        seed: 17,
        // Generous timer => op deadline far above the burst's drain time.
        timer: Duration::from_millis(40),
    };
    let mut store = NetStore::builder(params, cfg)
        .registers(REGISTERS)
        .shards(SHARDS)
        .transport(Transport::Tcp)
        .driver(Driver::Reactor)
        .build();
    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).expect("fresh handle")).collect();

    println!(
        "reactor smoke: {REGISTERS} registers x (write + read) = {} ops in flight \
         on {SHARDS} reactor thread(s), futures API over loopback TCP\n",
        2 * REGISTERS
    );

    // One async task per register: write, then read it back. Every
    // future is built (and its write submitted) before anything is
    // awaited, so the whole burst is in flight at once.
    let start = Instant::now();
    let futs: Vec<_> = handles
        .iter()
        .map(|h| {
            let v = 1 + h.id().0 as u64;
            let write = h.write_future(Value::from_u64(v));
            let read = h.read_future(0);
            async move {
                write.await.expect("write completes");
                let out = read.await.expect("read completes");
                (v, out.value.as_u64())
            }
        })
        .collect();
    for (v, read) in run_all(futs) {
        // Write and read overlap, so the read saw the initial value or
        // the new one; the checker below is the real oracle.
        assert!(read.is_none() || read == Some(v), "read {read:?} after writing {v}");
    }
    let elapsed = start.elapsed();

    store.check_atomicity().expect("burst stays linearizable per register");
    let history = store.history();
    assert_eq!(history.ops.len(), 2 * REGISTERS);
    for rec in &history.ops {
        assert!(rec.msgs > 0 && rec.bytes > 0, "op {:?} attributes real traffic", rec.id);
    }
    let stats = store.stats();
    assert!(stats.wire_bytes > 0, "traffic crossed the sockets");
    assert_eq!(stats.decode_errors, 0, "honest frames all decode");
    assert_eq!(stats.io_errors, 0, "no socket degradation on the happy path");
    if cfg!(target_os = "linux") {
        assert!(stats.reactor_wakeups > 0, "the epoll reactor actually ran");
    }
    store.shutdown();

    println!(
        "{} ops in {:.1} ms ({:.0} ops/s): {stats}",
        2 * REGISTERS,
        elapsed.as_secs_f64() * 1e3,
        (2 * REGISTERS) as f64 / elapsed.as_secs_f64(),
    );
    println!("\nreactor checker-clean: futures burst on epoll, real per-op accounting");
}
