//! Loopback-TCP smoke run (also wired into CI).
//!
//! Runs a multi-register, batching-enabled workload for **all three
//! protocol variants** over `Transport::Tcp` — real `std::net` sockets
//! between the router and every server/shard-worker slot, every message
//! crossing the wire as a checksummed `lucky-wire` frame — and asserts:
//!
//! * checker-clean outcomes (per-register atomicity, or regularity for
//!   the App. D variant);
//! * nonzero, internally consistent wire accounting: actual framed
//!   bytes (`wire_bytes`) strictly exceed the codec-exact payload
//!   accounting (`bytes`) by no more than bounded framing overhead;
//! * zero decode errors and zero drops on an honest run.
//!
//! ```sh
//! cargo run --release --example tcp_smoke
//! ```

use lucky_atomic::core::Setup;
use lucky_atomic::net::{NetConfig, NetStats, NetStore, Transport};
use lucky_atomic::types::{BatchConfig, Params, RegisterId, TwoRoundParams, Value};
use std::time::Duration;

const REGISTERS: usize = 4;
const READERS_PER_REGISTER: usize = 2;
const ROUNDS: u64 = 5;

fn net_cfg() -> NetConfig {
    NetConfig {
        min_latency: Duration::from_micros(100),
        max_latency: Duration::from_micros(400),
        seed: 7,
        timer: Duration::from_millis(8),
    }
}

fn run(setup: Setup) -> (NetStats, u64) {
    let mut store = NetStore::builder(setup, net_cfg())
        .registers(REGISTERS)
        .readers_per_register(READERS_PER_REGISTER)
        .shards(3)
        .batch(BatchConfig::enabled(16).with_max_delay_micros(1_000))
        .transport(Transport::Tcp)
        .build();
    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).expect("fresh handle")).collect();

    let mut ops = 0u64;
    for round in 0..ROUNDS {
        let mut tickets = Vec::new();
        for h in &handles {
            let v = 1 + h.id().0 as u64 * 1_000 + round;
            tickets.push(h.invoke_write(Value::from_u64(v)));
        }
        for h in &handles {
            for j in 0..READERS_PER_REGISTER as u16 {
                tickets.push(h.invoke_read(j));
            }
        }
        for t in tickets {
            t.wait().expect("operation completes over loopback TCP");
            ops += 1;
        }
    }

    match setup {
        Setup::Regular(_) => store.check_regularity().expect("checker-clean (regular)"),
        _ => store.check_atomicity().expect("checker-clean (atomic)"),
    }
    let stats = store.stats();
    store.shutdown();
    (stats, ops)
}

fn main() {
    let setups: [(&str, Setup); 3] = [
        ("atomic (§3)", Setup::Atomic(Params::new(2, 1, 1, 0).expect("valid params"))),
        (
            "two-round (App. C)",
            Setup::TwoRound(TwoRoundParams::new(2, 1, 1).expect("valid params")),
        ),
        ("regular (App. D)", Setup::Regular(Params::trading_reads(2, 1).expect("valid params"))),
    ];
    println!(
        "tcp smoke: {REGISTERS} registers x ({ROUNDS} writes + {} reads) over loopback TCP, \
         batching max_msgs=16\n",
        ROUNDS * READERS_PER_REGISTER as u64
    );
    for (name, setup) in setups {
        let (stats, ops) = run(setup);

        // The audit the exact `Message::wire_size` enables: actual
        // framed bytes bracket the payload accounting within bounded
        // per-frame + per-part overhead (derived from the lucky-wire
        // frame layout by `NetStats::max_framing_overhead`).
        assert!(stats.wire_bytes > stats.bytes, "{name}: framing adds overhead");
        let overhead_bound = stats.max_framing_overhead();
        assert!(
            stats.wire_bytes <= stats.bytes + overhead_bound,
            "{name}: framed {} vs payload {} exceeds the +{overhead_bound} overhead bound",
            stats.wire_bytes,
            stats.bytes
        );
        assert!(stats.wire_bytes > 0 && stats.bytes > 0, "{name}: nonzero wire traffic");
        assert_eq!(stats.decode_errors, 0, "{name}: honest frames all decode");
        assert_eq!(stats.dropped, 0, "{name}: nothing lost on an honest run");
        assert!(stats.msgs_per_batch() > 1.0, "{name}: batching engaged");

        println!("{name:<20} {ops:>5} ops: {stats}");
    }
    println!("\nall three variants checker-clean over real sockets; byte audit within bounds");
}
