//! A replicated configuration store on the threaded runtime.
//!
//! The scenario the paper's introduction motivates: a control plane where
//! one operator (the writer) publishes configuration revisions and many
//! consumers (readers) poll them. Runs on `lucky-net` — real threads,
//! real channels, injected network latency — with t = 1, b = 1 (S = 4
//! servers, one of which is actively Byzantine).
//!
//! Run with: `cargo run --example replicated_config_store`

use lucky_atomic::core::byz::ForgeValue;
use lucky_atomic::net::{NetCluster, NetConfig};
use lucky_atomic::types::{Params, Seq, TsVal, Value};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(1, 1, 0, 0)?;
    println!("config store on {params}: 4 server threads, 1 Byzantine");

    let cfg = NetConfig {
        min_latency: Duration::from_micros(100),
        max_latency: Duration::from_millis(1),
        seed: 42,
        timer: Duration::from_millis(8),
    };
    let mut cluster = NetCluster::builder(params, cfg)
        .readers(2)
        // Server 2 tries to serve a forged configuration revision.
        .byzantine(2, Box::new(ForgeValue::new(TsVal::new(Seq(9), Value::from_u64(9999)))))
        .build();

    let mut publisher = cluster.take_writer().expect("writer handle");
    let mut poller_a = cluster.take_reader(0).expect("reader 0");
    let mut poller_b = cluster.take_reader(1).expect("reader 1");

    // Consumer threads poll concurrently with publishing.
    let consumer_a = std::thread::spawn(move || {
        let mut last = 0u64;
        for _ in 0..20 {
            let got = poller_a.read().expect("read").value.as_u64().unwrap_or(0);
            assert!(got >= last, "revision went backwards: {got} < {last}");
            assert!(got != 9999, "forged revision observed!");
            last = got;
        }
        last
    });
    let consumer_b = std::thread::spawn(move || {
        let mut last = 0u64;
        for _ in 0..20 {
            let got = poller_b.read().expect("read").value.as_u64().unwrap_or(0);
            assert!(got >= last, "revision went backwards: {got} < {last}");
            last = got;
        }
        last
    });

    // Publish revisions 1..=10.
    for rev in 1..=10u64 {
        let out = publisher.write(Value::from_u64(rev))?;
        println!(
            "published revision {rev}: rounds={} fast={} in {:?}",
            out.rounds, out.fast, out.elapsed
        );
    }

    let final_a = consumer_a.join().expect("consumer A");
    let final_b = consumer_b.join().expect("consumer B");
    println!("consumer A last saw revision {final_a}; consumer B last saw {final_b}");

    let stats = cluster.stats();
    println!(
        "router carried {} messages ({} bytes), {} dropped",
        stats.messages, stats.bytes, stats.dropped
    );
    cluster.shutdown();
    println!("revisions never went backwards and the forgery never surfaced ✓");
    Ok(())
}
