//! Polled-driver TCP smoke run (also wired into CI).
//!
//! Runs a multi-register workload for **all three protocol variants**
//! over `Transport::Tcp` with the **polled driver**: each shard worker is
//! one nonblocking readiness-style poll loop multiplexing all of its
//! client sessions — accepting the router's socket itself, reassembling
//! frames with `lucky-wire`'s push-based `FrameDecoder`, and driving the
//! sans-io `ClientSession`s from whatever bytes arrived. Asserts:
//!
//! * every operation completes and the per-register checker is clean
//!   (atomicity, or regularity for the App. D variant);
//! * genuine multiplexing: all of a round's operations are submitted
//!   before any is waited on, on fewer workers than registers;
//! * clean wire accounting: nonzero framed bytes, zero decode errors,
//!   zero drops.
//!
//! ```sh
//! cargo run --release --example polled_smoke
//! ```

use lucky_atomic::core::Setup;
use lucky_atomic::net::{Driver, NetConfig, NetStats, NetStore, Transport};
use lucky_atomic::types::{BatchConfig, Params, RegisterId, TwoRoundParams, Value};
use std::time::Duration;

const REGISTERS: usize = 4;
const READERS_PER_REGISTER: usize = 2;
const ROUNDS: u64 = 5;
const SHARDS: usize = 2;

fn net_cfg() -> NetConfig {
    NetConfig {
        min_latency: Duration::from_micros(100),
        max_latency: Duration::from_micros(400),
        seed: 9,
        timer: Duration::from_millis(8),
    }
}

fn run(setup: Setup) -> (NetStats, u64) {
    let mut store = NetStore::builder(setup, net_cfg())
        .registers(REGISTERS)
        .readers_per_register(READERS_PER_REGISTER)
        .shards(SHARDS)
        .batch(BatchConfig::enabled(16).with_max_delay_micros(1_000))
        .transport(Transport::Tcp)
        .driver(Driver::Polled)
        .build();
    let handles: Vec<_> =
        RegisterId::all(REGISTERS).map(|reg| store.register(reg).expect("fresh handle")).collect();

    let mut ops = 0u64;
    for round in 0..ROUNDS {
        // Submit the whole round before waiting on anything: with only
        // SHARDS < REGISTERS workers, completion requires the poll
        // loops to genuinely multiplex their sessions.
        let mut tickets = Vec::new();
        for h in &handles {
            let v = 1 + h.id().0 as u64 * 1_000 + round;
            tickets.push(h.invoke_write(Value::from_u64(v)));
        }
        for h in &handles {
            for j in 0..READERS_PER_REGISTER as u16 {
                tickets.push(h.invoke_read(j));
            }
        }
        for t in tickets {
            t.wait().expect("operation completes on the polled driver");
            ops += 1;
        }
    }

    match setup {
        Setup::Regular(_) => store.check_regularity().expect("checker-clean (regular)"),
        _ => store.check_atomicity().expect("checker-clean (atomic)"),
    }
    let stats = store.stats();
    store.shutdown();
    (stats, ops)
}

fn main() {
    let setups: [(&str, Setup); 3] = [
        ("atomic (§3)", Setup::Atomic(Params::new(2, 1, 1, 0).expect("valid params"))),
        (
            "two-round (App. C)",
            Setup::TwoRound(TwoRoundParams::new(2, 1, 1).expect("valid params")),
        ),
        ("regular (App. D)", Setup::Regular(Params::trading_reads(2, 1).expect("valid params"))),
    ];
    println!(
        "polled smoke: {REGISTERS} registers on {SHARDS} poll-loop workers x \
         ({ROUNDS} writes + {} reads) over loopback TCP\n",
        ROUNDS * READERS_PER_REGISTER as u64
    );
    for (name, setup) in setups {
        let (stats, ops) = run(setup);
        assert_eq!(ops, ROUNDS * (REGISTERS as u64) * (1 + READERS_PER_REGISTER as u64));
        assert!(stats.wire_bytes > 0, "{name}: traffic crossed the sockets");
        assert_eq!(stats.decode_errors, 0, "{name}: honest frames all decode");
        assert_eq!(stats.dropped, 0, "{name}: nothing lost on an honest run");
        println!("{name:<20} {ops:>5} ops: {stats}");
    }
    println!("\nall three variants checker-clean on the polled driver over real sockets");
}
