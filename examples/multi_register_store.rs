//! A multi-register store on the threaded runtime.
//!
//! One `S = 2t + b + 1` server cluster serves eight independent robust
//! atomic registers — the "many objects, one quorum system" deployment
//! the multi-object data-store literature studies. Every server thread
//! multiplexes per-register state; client cores are sharded across
//! worker threads by register, so independent registers proceed
//! concurrently over the shared router. One server is crashed and one is
//! actively Byzantine, both within the configured fault budget.
//!
//! Run with: `cargo run --example multi_register_store`

use lucky_atomic::core::byz::ForgeValue;
use lucky_atomic::net::{NetConfig, NetStore};
use lucky_atomic::types::{Params, RegisterId, Seq, TsVal, Value};
use std::time::Duration;

const REGISTERS: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // t = 2, b = 1 → S = 6 servers; one crash + one Byzantine tolerated.
    let params = Params::new(2, 1, 1, 0)?;
    println!("store on {params}: {REGISTERS} registers over one 6-server cluster");

    let cfg = NetConfig {
        min_latency: Duration::from_micros(100),
        max_latency: Duration::from_millis(1),
        seed: 42,
        timer: Duration::from_millis(8),
    };
    let mut store = NetStore::builder(params, cfg)
        .registers(REGISTERS)
        .shards(4)
        .crashed(0)
        // Server 1 answers every register with a forged pair.
        .byzantine(1, Box::new(ForgeValue::new(TsVal::new(Seq(900), Value::from_u64(666)))))
        .build();
    println!(
        "client cores sharded over {} worker threads (hash of register id)",
        store.shard_count()
    );

    let handles: Vec<_> = RegisterId::all(REGISTERS)
        .map(|reg| store.register(reg).expect("handle taken once"))
        .collect();

    // Write all eight registers concurrently: submit every ticket first,
    // then wait. Registers on different shard workers overlap in flight.
    for round in 1..=3u64 {
        let tickets: Vec<_> = handles
            .iter()
            .map(|h| h.invoke_write(Value::from_u64(h.id().0 as u64 * 100 + round)))
            .collect();
        for (h, t) in handles.iter().zip(tickets) {
            let out = t.wait()?;
            println!(
                "  round {round}: {} WRITE({}) in {} round-trip(s){}",
                h.id(),
                out.value.as_u64().unwrap(),
                out.rounds,
                if out.fast { " [fast]" } else { "" },
            );
        }
    }

    // Every register reads back its own last value — never a neighbour's,
    // never the forgery.
    for h in &handles {
        let out = h.read(0)?;
        let expect = h.id().0 as u64 * 100 + 3;
        assert_eq!(out.value.as_u64(), Some(expect), "register {} isolation", h.id());
        println!("  {} READ() -> {} (reg echoed: {})", h.id(), expect, out.reg);
    }

    // The per-register linearizability oracle over the recorded history.
    store.check_atomicity()?;
    println!("per-register atomicity: OK");

    let stats = store.stats();
    println!("router: {} msgs, {} bytes total", stats.messages, stats.bytes);
    for reg in RegisterId::all(REGISTERS) {
        let per = stats.register(reg);
        println!("  {reg}: {} msgs, {} bytes", per.messages, per.bytes);
    }

    store.shutdown();
    Ok(())
}
