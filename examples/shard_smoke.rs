//! Sharding scale + live-migration smoke run (also wired into CI).
//!
//! Phase 1 (sim): four server groups with *different* quorum shapes —
//! group 3 tolerates a Byzantine server (S = 6), the rest run lean
//! crash-only quorums (S = 3) — exercise a migration mid-write and a
//! seed-driven differential walk (migrating store vs never-migrating
//! twin on the same schedule), checker-clean.
//!
//! Phase 2 (TCP, polled driver): **one million** registers are created
//! across the four groups in O(1) memory — the namespace is lazy, so
//! nothing materializes until touched — then a sample of them serves
//! real traffic over loopback TCP, one register live-migrates between
//! groups mid-traffic, and the per-group `NetStats` rollup prints the
//! breakdown. The atomicity checker partitions per group and per
//! backing register and must come back clean.
//!
//! ```sh
//! cargo run --release --example shard_smoke
//! ```

use lucky_atomic::core::StoreConfig;
use lucky_atomic::net::{Driver, NetConfig, Transport};
use lucky_atomic::shard::{differential_migration_walk, GroupId, ShardNetStore, ShardSimStore};
use lucky_atomic::types::{Params, RegisterId, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GROUPS: usize = 4;
const NAMESPACE: u32 = 1_000_000;
const SAMPLE: u32 = 24;

fn small() -> Params {
    Params::new(1, 0, 1, 0).expect("valid params") // S = 3
}

fn byz_tolerant() -> Params {
    Params::new(2, 1, 1, 0).expect("valid params") // S = 6
}

fn cfg() -> StoreConfig {
    StoreConfig::synchronous(small())
        .registers(64) // per-group materialize quota
        .groups(GROUPS)
        .group_setup(3, byz_tolerant())
        .with_trace(lucky_atomic::trace::TraceConfig::enabled())
}

fn net_cfg() -> NetConfig {
    NetConfig {
        min_latency: Duration::from_micros(50),
        max_latency: Duration::from_micros(200),
        seed: 13,
        timer: Duration::from_millis(5),
    }
}

fn sim_phase() {
    println!("== sim: mixed quorum shapes + migration mid-write ==");
    let mut store = ShardSimStore::new(cfg());
    store.bulk_create(1_000).unwrap();
    for g in 0..GROUPS as u16 {
        println!("  {}: S = {} servers", GroupId(g), store.group(GroupId(g)).server_count());
    }

    let reg = RegisterId(42);
    store.write(reg, Value::from_u64(1)).unwrap();
    store.invoke_write(reg, Value::from_u64(2)).unwrap(); // in flight...
    let from = store.group_of(reg);
    let to = GroupId((from.0 + 1) % GROUPS as u16);
    let report = store.migrate(reg, to).unwrap(); // ...drained here
    println!("  {report}");
    assert_eq!(report.drained, 1);
    assert_eq!(store.read(reg, 0).unwrap().value.as_u64(), Some(2));
    store.check_atomicity().unwrap();
    println!("  atomicity: clean across {GROUPS} groups");

    let walk = differential_migration_walk(cfg(), 0xC0FFEE, 80);
    println!(
        "  differential walk: {} ops, {} migrations, {} reads all matching the \
         never-migrating twin",
        walk.ops,
        walk.migrations,
        walk.reads.len()
    );
}

fn net_phase() {
    println!("== tcp/polled: 1M-register namespace + live migration ==");
    let built = Instant::now();
    let store = Arc::new(
        ShardNetStore::builder(cfg(), net_cfg())
            .transport(Transport::Tcp)
            .driver(Driver::Polled)
            .register_quota(NAMESPACE as usize + 8)
            .build(),
    );
    store.bulk_create(NAMESPACE).unwrap();
    println!(
        "  created {NAMESPACE} registers across {GROUPS} groups in {:?} \
         ({} materialized)",
        built.elapsed(),
        store.materialized()
    );
    assert_eq!(store.len(), NAMESPACE as usize);
    assert_eq!(store.materialized(), 0, "creation must stay lazy");

    // Traffic on a spread-out sample: registers hash across all groups.
    let stride = NAMESPACE / SAMPLE;
    let sample: Vec<RegisterId> = (0..SAMPLE).map(|i| RegisterId(i * stride)).collect();
    let t0 = Instant::now();
    for (i, reg) in sample.iter().enumerate() {
        store.write(*reg, Value::from_u64(1_000 + i as u64)).unwrap();
        let r = store.read(*reg, 0).unwrap();
        assert_eq!(r.value.as_u64(), Some(1_000 + i as u64));
    }
    println!(
        "  {} ops over TCP in {:?} ({} registers materialized)",
        sample.len() * 2,
        t0.elapsed(),
        store.materialized()
    );

    // Live migration under concurrent writes.
    let reg = sample[0];
    let to = GroupId((store.group_of(reg).0 + 1) % GROUPS as u16);
    let writer = {
        let store = store.clone();
        std::thread::spawn(move || {
            for i in 1..=20u64 {
                store.write(reg, Value::from_u64(i)).unwrap();
            }
        })
    };
    std::thread::sleep(Duration::from_millis(3));
    let report = store.migrate(reg, to).unwrap();
    writer.join().unwrap();
    println!("  {report}");
    assert_eq!(store.read(reg, 0).unwrap().value.as_u64(), Some(20));

    store.check_atomicity().unwrap();
    println!("  atomicity: clean across {GROUPS} groups");
    println!("  rollup:{}", store.stats());
    store.shutdown();
}

fn main() {
    sim_phase();
    net_phase();
    println!("shard smoke: OK");
}
