//! Contention and the freezing mechanism.
//!
//! Two demonstrations on the simulator:
//!
//! 1. **Contention un-lucks reads**: a read overlapping a write loses its
//!    fast path but atomicity is preserved.
//! 2. **Freezing guarantees reader wait-freedom** (Theorem 2): a reader
//!    facing an endless write storm still terminates, because the writer
//!    freezes a value for it; with freezing disabled (ablation) the same
//!    read starves until the storm ends.
//!
//! Run with: `cargo run --example contention_and_freezing`

use lucky_atomic::core::{ClusterConfig, ProtocolConfig, SimCluster};
use lucky_atomic::types::{Params, ReaderId, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(2, 1, 1, 0)?;

    // --- 1. Contention -------------------------------------------------
    let mut cluster = SimCluster::new(ClusterConfig::synchronous(params), 1);
    cluster.write(Value::from_u64(1));
    // Writer and reader overlap: the read is under contention -> unlucky.
    let w = cluster.invoke_write(Value::from_u64(2));
    let r = cluster.invoke_read(ReaderId(0));
    cluster.run_until_complete(w)?;
    let read = cluster.run_until_complete(r)?;
    println!("contended READ returned {}: rounds={} fast={}", read.value, read.rounds, read.fast);
    cluster.check_atomicity()?;
    println!("atomicity holds under contention ✓\n");

    // --- 2. Freezing vs. starvation ------------------------------------
    //
    // The adversarial pattern behind Theorem 2's case (b): the reader's
    // READ messages reach each server at a different time (staggered
    // link delays), so each round samples the servers at *different write
    // epochs* — more than one write apart. Under a continuous write storm
    // no pair then ever reaches b+1 matching copies in a round's view,
    // and the only way the reader can terminate is the freezing
    // hand-shake. Disabling freezing (ablation) starves it.
    for freezing in [true, false] {
        let protocol = ProtocolConfig {
            freezing,
            max_read_rounds: Some(25),
            ..ProtocolConfig::for_sync_bound(100)
        };
        let mut cfg = ClusterConfig::synchronous(params).with_protocol(protocol);
        // Stagger the reader -> server links by ~2.5 write periods each,
        // so no two sampled server states are ever from the same or
        // adjacent write epochs.
        use lucky_atomic::sim::Delay;
        use lucky_atomic::types::{ProcessId, ServerId};
        for i in 0..params.server_count() as u16 {
            cfg.net.set_link(
                ProcessId::Reader(ReaderId(0)),
                ProcessId::Server(ServerId(i)),
                Delay::Constant(100 + 1_300 * i as u64),
            );
        }
        let mut cluster = SimCluster::new(cfg, 1);
        // Crash two servers (the full crash budget t = 2): the read
        // quorum is now exactly the four staggered servers, so every
        // round's view mixes four non-adjacent epochs.
        cluster.crash_server(4);
        cluster.crash_server(5);

        // Closed-loop write storm concurrent with one read.
        let read_op = cluster.invoke_read_at(cluster.now() + 2_000, ReaderId(0));
        let mut i = 0u64;
        while !cluster.is_complete(read_op) && i < 400 {
            i += 1;
            cluster.write(Value::from_u64(i));
        }
        cluster.run_until_idle(5_000_000);

        let rec = cluster.history().get(read_op).expect("read record").clone();
        if freezing {
            assert!(rec.is_complete(), "freezing must let the reader finish");
            println!(
                "freezing ON : READ completed in {} rounds after {} concurrent \
                 writes (value {}) — Theorem 2 ✓",
                rec.rounds,
                i,
                rec.result.clone().unwrap()
            );
            cluster.check_atomicity()?;
        } else {
            assert!(!rec.is_complete(), "ablation: the reader should starve");
            println!(
                "freezing OFF: READ starved: capped at 25 rounds under the storm ({} writes) — \
                 the mechanism is load-bearing ✓",
                i
            );
        }
    }
    Ok(())
}
